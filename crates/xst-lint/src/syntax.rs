//! A lightweight syntactic model of one Rust source file, built on the
//! comment/string-blanked [`crate::scan::SourceView`].
//!
//! This is deliberately *not* a real parser: it recognises exactly the
//! shapes the analysis passes need — `struct` field declarations, `impl`
//! blocks, `fn` items with receiver/arity, call sites with an optional
//! receiver identifier, and statement/block extents found by delimiter
//! counting. No type inference: resolution downstream works from names,
//! arities, and declared field types, and deliberately under-approximates
//! when a call is ambiguous.

use crate::scan::SourceView;

/// One named field of a struct: `name: Ty`.
pub struct FieldDecl {
    pub name: String,
    /// The declared type, as source text (e.g. `Arc<Mutex<WalInner>>`).
    pub ty: String,
}

/// One `struct` item with its named fields (tuple/unit structs keep an
/// empty field list).
pub struct StructDecl {
    pub name: String,
    pub fields: Vec<FieldDecl>,
    /// Offset of the `struct` keyword.
    pub at: usize,
}

/// One `fn` item.
pub struct FnDecl {
    pub name: String,
    /// The `impl` type this fn sits in, if any (trait impls use the
    /// implementing type).
    pub self_type: Option<String>,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Number of non-`self` parameters.
    pub arity: usize,
    /// Offset of the `fn` keyword.
    pub sig_at: usize,
    /// Body span as (open-brace offset, close-brace offset), if the fn
    /// has a body (trait method declarations do not).
    pub body: Option<(usize, usize)>,
}

/// One call site: `name(...)` or `recv.name(...)`.
pub struct Call {
    pub name: String,
    /// Offset of the callee name.
    pub at: usize,
    /// Top-level comma arity of the argument list.
    pub args: usize,
    /// True for method-call syntax (`.name(`).
    pub method: bool,
    /// The identifier immediately left of the dot (`self`, a field or
    /// local name); `None` when the receiver is a call chain or group.
    pub receiver: Option<String>,
}

/// The parsed model of one file.
pub struct FileModel {
    pub structs: Vec<StructDecl>,
    pub fns: Vec<FnDecl>,
}

pub fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn prev_non_ws(b: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !b[j].is_ascii_whitespace() {
            return Some(b[j]);
        }
    }
    None
}

fn ident_at(b: &[u8], i: usize) -> Option<(String, usize)> {
    if i >= b.len() || !(b[i].is_ascii_alphabetic() || b[i] == b'_') {
        return None;
    }
    let mut j = i;
    while j < b.len() && is_ident_char(b[j]) {
        j += 1;
    }
    Some((String::from_utf8_lossy(&b[i..j]).into_owned(), j))
}

/// Read the identifier *ending* just before offset `end` (exclusive).
fn ident_ending_at(b: &[u8], end: usize) -> Option<String> {
    let mut i = end;
    while i > 0 && is_ident_char(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(String::from_utf8_lossy(&b[i..end]).into_owned())
}

/// Offset of the delimiter closing the one at `open` (same kind only —
/// safe on blanked code where literals cannot unbalance anything).
pub fn matching(b: &[u8], open: usize) -> usize {
    let (o, c) = match b[open] {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        _ => (b'{', b'}'),
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == o {
            depth += 1;
        } else if b[i] == c {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    b.len().saturating_sub(1)
}

/// Skip a balanced `<...>` group starting at `i` (which must be `<`).
/// `->` and `=>` arrows are skipped so `Fn() -> T` bounds don't
/// unbalance the scan.
fn skip_angles(b: &[u8], i: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'<' => depth += 1,
            b'>' if j > 0 && (b[j - 1] == b'-' || b[j - 1] == b'=') => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    b.len()
}

/// Split `text` (a field list or parameter list) on top-level commas,
/// tracking `()`, `[]`, `{}`, and `<>` depth.
fn split_top_commas(text: &str) -> Vec<String> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b'>' if i > 0 && (b[i - 1] == b'-' || b[i - 1] == b'=') => {}
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b',' if depth == 0 => {
                out.push(text[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < text.len() {
        out.push(text[start..].to_string());
    }
    out
}

/// Strip leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) from an item or field fragment.
fn strip_attrs_and_vis(piece: &str) -> &str {
    let mut s = piece.trim_start();
    loop {
        if let Some(rest) = s.strip_prefix("#[") {
            let b = rest.as_bytes();
            let mut depth = 1usize;
            let mut i = 0usize;
            while i < b.len() && depth > 0 {
                match b[i] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            s = rest[i..].trim_start();
            continue;
        }
        if let Some(rest) = s.strip_prefix("pub") {
            if rest.starts_with(|c: char| c.is_whitespace() || c == '(') {
                let rest = rest.trim_start();
                s = if let Some(paren) = rest.strip_prefix('(') {
                    let close = paren.find(')').map(|i| i + 1).unwrap_or(paren.len());
                    paren[close..].trim_start()
                } else {
                    rest
                };
                continue;
            }
        }
        return s;
    }
}

/// Parse `view` into a [`FileModel`].
pub fn parse(view: &SourceView) -> FileModel {
    let code = &view.code;
    let b = code.as_bytes();
    let structs = parse_structs(code);
    let impls = parse_impls(b, code);
    let mut fns = parse_fns(b, code);
    for f in &mut fns {
        f.self_type = impls
            .iter()
            .find(|(_, span)| span.0 < f.sig_at && f.sig_at < span.1)
            .map(|(ty, _)| ty.clone());
    }
    FileModel { structs, fns }
}

/// Word-bounded occurrences of keyword `kw` in `code`.
fn keyword_positions(code: &str, kw: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(kw) {
        let at = from + p;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_char(b[at - 1]);
        let end = at + kw.len();
        let after_ok = end >= b.len() || !is_ident_char(b[end]);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

fn parse_structs(code: &str) -> Vec<StructDecl> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for at in keyword_positions(code, "struct") {
        let Some((name, mut i)) = ident_at(b, skip_ws(b, at + "struct".len())) else {
            continue;
        };
        // Walk to the body: `{` opens named fields, `(` a tuple struct,
        // `;` a unit struct. Generic params may hold `Fn(..)` parens.
        if skip_ws(b, i) < b.len() && b[skip_ws(b, i)] == b'<' {
            i = skip_angles(b, skip_ws(b, i));
        }
        let mut fields = Vec::new();
        let mut j = i;
        while j < b.len() {
            match b[j] {
                b';' => break,
                b'(' => {
                    j = matching(b, j);
                }
                b'{' => {
                    let close = matching(b, j);
                    for piece in split_top_commas(&code[j + 1..close]) {
                        let piece = strip_attrs_and_vis(&piece);
                        if let Some(colon) = piece.find(':') {
                            let fname = piece[..colon].trim();
                            if fname.chars().all(|c| is_ident_char(c as u8)) && !fname.is_empty() {
                                fields.push(FieldDecl {
                                    name: fname.to_string(),
                                    ty: piece[colon + 1..].trim().to_string(),
                                });
                            }
                        }
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        out.push(StructDecl { name, fields, at });
    }
    out
}

/// `impl` blocks as (self-type ident, body span).
fn parse_impls(b: &[u8], code: &str) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    for at in keyword_positions(code, "impl") {
        // `impl Trait` in type position (`-> impl Iterator`, `x: impl Fn`)
        // is not an impl block.
        if matches!(
            prev_non_ws(b, at),
            Some(b':' | b'>' | b',' | b'(' | b'&' | b'+' | b'=' | b'<')
        ) {
            continue;
        }
        // Find the body `{` at paren depth 0.
        let mut i = at + "impl".len();
        let mut paren = 0isize;
        let mut open = None;
        while i < b.len() {
            match b[i] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'{' if paren == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        let mut header = code[at + "impl".len()..open].trim();
        if let Some(w) = keyword_positions(header, "where").first() {
            header = header[..*w].trim_end();
        }
        if let Some(f) = keyword_positions(header, "for").first() {
            header = header[f + "for".len()..].trim();
        }
        // Strip leading generic params, then take the path's last segment.
        let hb = header.as_bytes();
        let rest = if !hb.is_empty() && hb[0] == b'<' {
            header[skip_angles(hb, 0)..].trim_start()
        } else {
            header
        };
        let base = rest.split('<').next().unwrap_or(rest).trim();
        let ty = base.rsplit("::").next().unwrap_or(base).trim().to_string();
        if !ty.is_empty() {
            out.push((ty, (open, matching(b, open))));
        }
    }
    out
}

fn parse_fns(b: &[u8], code: &str) -> Vec<FnDecl> {
    let mut out = Vec::new();
    for at in keyword_positions(code, "fn") {
        let Some((name, after_name)) = ident_at(b, skip_ws(b, at + "fn".len())) else {
            continue; // `fn(..)` pointer type
        };
        let mut i = skip_ws(b, after_name);
        if i < b.len() && b[i] == b'<' {
            i = skip_ws(b, skip_angles(b, i));
        }
        if i >= b.len() || b[i] != b'(' {
            continue;
        }
        let close = matching(b, i);
        let params = split_top_commas(&code[i + 1..close]);
        let mut has_self = false;
        let mut arity = 0usize;
        for (k, p) in params.iter().enumerate() {
            let t = p.trim();
            if t.is_empty() {
                continue;
            }
            // Strip `&`, a lifetime (`'a `), and `mut ` prefixes, then
            // look for a `self` receiver in first position.
            let stripped = t.trim_start_matches('&').trim_start();
            let stripped = stripped
                .strip_prefix('\'')
                .map(|s| {
                    s.trim_start_matches(|c: char| is_ident_char(c as u8))
                        .trim_start()
                })
                .unwrap_or(stripped);
            let stripped = stripped
                .strip_prefix("mut ")
                .unwrap_or(stripped)
                .trim_start();
            if k == 0
                && (stripped == "self"
                    || stripped.starts_with("self:")
                    || stripped.starts_with("self "))
            {
                has_self = true;
            } else {
                arity += 1;
            }
        }
        // Find the body `{` or the terminating `;` at paren/bracket depth 0
        // (return types may hold parens and array types — `[u8; N]` hides
        // a `;` — but never braces).
        let mut j = close + 1;
        let mut paren = 0isize;
        let mut body = None;
        while j < b.len() {
            match b[j] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    body = Some((j, matching(b, j)));
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        out.push(FnDecl {
            name,
            self_type: None,
            has_self,
            arity,
            sig_at: at,
            body,
        });
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "struct", "enum", "impl", "let", "in",
    "move", "as", "use", "mod", "where", "else", "break", "continue",
];

/// Every call site within `span` of the blanked code.
pub fn calls_in(code: &str, span: (usize, usize)) -> Vec<Call> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = span.0;
    let end = span.1.min(b.len());
    while i < end {
        if !(b[i].is_ascii_alphabetic() || b[i] == b'_') || (i > 0 && is_ident_char(b[i - 1])) {
            i += 1;
            continue;
        }
        let Some((name, after)) = ident_at(b, i) else {
            i += 1;
            continue;
        };
        let open = skip_ws(b, after);
        if open >= end || b[open] != b'(' || KEYWORDS.contains(&name.as_str()) {
            i = after;
            continue;
        }
        // Method call? The token before the name must be a `.` (skipping
        // whitespace rustfmt wraps chains with).
        let mut k = i;
        while k > 0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        let method = k > 0 && b[k - 1] == b'.';
        let receiver = if method {
            let mut r = k - 1;
            while r > 0 && b[r - 1].is_ascii_whitespace() {
                r -= 1;
            }
            ident_ending_at(b, r)
        } else {
            // Skip declarations (`fn name(`) — the word before is `fn`.
            if ident_ending_at(b, k).as_deref() == Some("fn") {
                i = after;
                continue;
            }
            None
        };
        let close = matching(b, open);
        let inner = code[open + 1..close].trim();
        let args = if inner.is_empty() {
            0
        } else {
            top_level_commas(inner.as_bytes()) + 1
        };
        out.push(Call {
            name,
            at: i,
            args,
            method,
            receiver,
        });
        i = after;
    }
    out
}

/// Count commas at `()`/`[]`/`{}` depth 0 (no angle tracking: argument
/// expressions may contain `<` comparisons).
fn top_level_commas(b: &[u8]) -> usize {
    let mut depth = 0isize;
    let mut n = 0usize;
    for &c in b {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => n += 1,
            _ => {}
        }
    }
    n
}

/// Offset of the `;` (or enclosing-block `}`) ending the statement that
/// contains offset `from`. Signed depth handles a mid-expression start.
pub fn stmt_end(b: &[u8], from: usize, limit: usize) -> usize {
    let mut depth = 0isize;
    let mut i = from;
    let limit = limit.min(b.len());
    while i < limit {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b'}' => {
                if depth <= 0 {
                    return i;
                }
                depth -= 1;
            }
            b')' | b']' => depth -= 1,
            b';' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Offset where the statement containing `from` begins (just past the
/// previous `;`, `{`, or match-arm `=>` at this nesting level).
pub fn stmt_start(b: &[u8], from: usize, floor: usize) -> usize {
    let mut depth = 0isize;
    let mut i = from;
    while i > floor {
        i -= 1;
        match b[i] {
            b')' | b']' | b'}' => depth += 1,
            b'{' => {
                if depth <= 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b'(' | b'[' => depth -= 1,
            b';' if depth <= 0 => return i + 1,
            b'>' if depth <= 0 && i > floor && b[i - 1] == b'=' => return i + 1,
            _ => {}
        }
    }
    floor
}

/// Offset of the `}` closing the innermost block containing `from`.
pub fn block_end(b: &[u8], from: usize, limit: usize) -> usize {
    let mut depth = 0isize;
    let mut i = from;
    let limit = limit.min(b.len());
    while i < limit {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b'}' => {
                if depth <= 0 {
                    return i;
                }
                depth -= 1;
            }
            b')' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceView;

    fn model(src: &str) -> FileModel {
        parse(&SourceView::new(src))
    }

    #[test]
    fn structs_and_fields_are_parsed() {
        let m = model(
            "pub struct Wal { pub(crate) inner: Arc<Mutex<WalInner>>, n: usize }\n\
             struct Unit;\nstruct Tup(u32, u32);\n\
             struct Gen<T: Fn(u32) -> u32> { f: T, m: BTreeMap<String, Vec<u8>> }",
        );
        assert_eq!(m.structs.len(), 4);
        assert_eq!(m.structs[0].name, "Wal");
        assert_eq!(m.structs[0].fields[0].name, "inner");
        assert_eq!(m.structs[0].fields[0].ty, "Arc<Mutex<WalInner>>");
        assert_eq!(m.structs[0].fields[1].name, "n");
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
        assert_eq!(m.structs[3].fields.len(), 2, "comma inside <> not split");
        assert_eq!(m.structs[3].fields[1].ty, "BTreeMap<String, Vec<u8>>");
    }

    #[test]
    fn fns_get_impl_type_receiver_and_arity() {
        let m = model(
            "impl Wal {\n  pub fn sync(&self) -> Result<(), E> { self.flush() }\n\
              fn two(&mut self, a: u32, b: Vec<(u8, u8)>) {}\n}\n\
             impl fmt::Display for Wal { fn fmt(&self, f: &mut F) -> R { todo() } }\n\
             fn free(a: u32) {}\nfn decl_only();\n",
        );
        let sync = m.fns.iter().find(|f| f.name == "sync").unwrap();
        assert_eq!(sync.self_type.as_deref(), Some("Wal"));
        assert!(sync.has_self);
        assert_eq!(sync.arity, 0);
        let two = m.fns.iter().find(|f| f.name == "two").unwrap();
        assert_eq!(two.arity, 2, "tuple-typed arg is one parameter");
        let fmt = m.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(
            fmt.self_type.as_deref(),
            Some("Wal"),
            "trait impl binds the type"
        );
        let free = m.fns.iter().find(|f| f.name == "free").unwrap();
        assert!(!free.has_self && free.self_type.is_none());
        assert_eq!(free.arity, 1);
        assert!(m
            .fns
            .iter()
            .find(|f| f.name == "decl_only")
            .unwrap()
            .body
            .is_none());
    }

    #[test]
    fn calls_capture_receiver_and_arity() {
        let src = "fn f(&self) { self.inner.lock(); shard.mgr.prepare(a, b); free(x); \
                   chain().next(); if cond(x) { } }";
        let m = model(src);
        let body = m.fns[0].body.unwrap();
        let calls = calls_in(src, (body.0, body.1));
        let lock = calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lock.method);
        assert_eq!(lock.receiver.as_deref(), Some("inner"));
        assert_eq!(lock.args, 0);
        let prep = calls.iter().find(|c| c.name == "prepare").unwrap();
        assert_eq!(prep.receiver.as_deref(), Some("mgr"));
        assert_eq!(prep.args, 2);
        let free = calls.iter().find(|c| c.name == "free").unwrap();
        assert!(!free.method);
        let next = calls.iter().find(|c| c.name == "next").unwrap();
        assert!(next.receiver.is_none(), "chained receiver is opaque");
        assert!(!calls.iter().any(|c| c.name == "if"));
    }

    #[test]
    fn statement_and_block_extents() {
        let src = "fn f() { let g = m.lock(); use_it(g); { inner(); } }";
        let b = src.as_bytes();
        let lock_at = src.find("lock").unwrap();
        let semi = stmt_end(b, lock_at, src.len());
        assert_eq!(&src[semi..semi + 1], ";");
        assert!(src[..semi].ends_with("m.lock()"));
        let start = stmt_start(b, lock_at, 0);
        assert!(src[start..].trim_start().starts_with("let g"));
        let close = block_end(b, lock_at, src.len());
        assert_eq!(close, src.len() - 1);
        let inner_at = src.find("inner").unwrap();
        let inner_close = block_end(b, inner_at, src.len());
        assert!(src[inner_close..].starts_with("} }"));
    }

    #[test]
    fn mid_expression_statement_end_is_found() {
        let src = "fn f() { g(m.lock()); next(); }";
        let b = src.as_bytes();
        let lock_at = src.find("lock").unwrap();
        let semi = stmt_end(b, lock_at, src.len());
        assert!(src[..semi].ends_with("g(m.lock())"));
    }
}
