//! `xst-lint` — first-party static analysis for the XST workspace.
//!
//! Zero dependencies. Two layers of rules over `crates/*/src`:
//!
//! **Token rules** (since PR 5), on a comment/string-blanked view:
//!
//! 1. **no-panic** — `.unwrap()`, `.expect(`, and `panic!` are forbidden
//!    in non-test `xst-storage`/`xst-core`/`xst-server`/`xst-client`.
//! 2. **determinism** — wall-clock and ambient entropy are forbidden in
//!    deterministic harness/fault/sched modules.
//! 3. **metric-names** — every `xst_*` literal lives once in
//!    `crates/xst-obs/src/names.rs`.
//! 4. **registered-metrics** — registration sites name their family
//!    through `names::` constants.
//!
//! **Analysis passes** (this PR), on a lightweight syntactic model
//! ([`syntax`]) with a call-graph approximation:
//!
//! 5. **lock-cycle** ([`locks`]) — the lock-acquisition relation,
//!    propagated through the call graph, must be acyclic; any cycle is
//!    reported with witnessing acquisition paths.
//! 6. **lock-across-io** ([`locks`]) — no guard may be live across a
//!    blocking operation (fsync, WAL `append_batch`, socket framing,
//!    `JoinHandle::join`) unless the site carries a
//!    `// lint: lock-across-io: <why>` justification.
//! 7. **unnumbered-io** ([`faults`]) — every function touching device
//!    state in `xst-storage` goes through a `FaultPlan` site check or is
//!    justified, so "crash at every site" is a checked invariant.
//! 8. **proto-dispatch** / **version-gate** ([`proto`]) — wire tags,
//!    decode arms, and `Session::handle` dispatch agree; v2+ requests
//!    are version-gated in their arm (reported as `version-gate`, the
//!    one justifiable protocol finding).
//!
//! Justification comments are the living allowlist: they must carry a
//! non-empty reason, survive `--deny-all` (unlike the legacy static
//! [`ALLOWLIST`], which ships empty), and are themselves linted — an
//! unused justification is an error, so stale exemptions cannot linger.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod faults;
pub mod locks;
pub mod proto;
pub mod report;
pub mod scan;
pub mod syntax;

use scan::SourceView;
use syntax::FileModel;

/// Permanent token-rule exemptions: `(path suffix, token)` pairs. Kept
/// empty — CI runs `--deny-all`, and new exemptions belong in a code fix
/// or a justification comment, not here.
pub const ALLOWLIST: &[(&str, &str)] = &[];

/// Rules that accept `// lint: <rule>: <why>` justification comments.
pub const JUSTIFIABLE_RULES: &[&str] = &["lock-across-io", "unnumbered-io", "version-gate"];

/// One lint finding. `justified` findings are reported but do not fail
/// the run (they are the documented, counted exemptions).
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
    pub justified: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.rule,
            self.message,
            if self.justified { " (justified)" } else { "" }
        )
    }
}

pub(crate) fn push_finding(
    findings: &mut Vec<Finding>,
    file: &str,
    line: usize,
    rule: &str,
    message: String,
    justified: bool,
) {
    findings.push(Finding {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message,
        justified,
    });
}

/// One loaded source file with its scanned view and syntactic model.
pub struct FileRecord {
    pub path: PathBuf,
    /// Root-relative path with forward slashes.
    pub rel: String,
    pub crate_name: String,
    pub source: String,
    pub view: SourceView,
    pub model: FileModel,
}

/// All loaded files.
pub struct Workspace {
    pub files: Vec<FileRecord>,
}

/// The result of a full lint run.
pub struct LintReport {
    pub root: PathBuf,
    pub files_checked: usize,
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Unjustified findings — these fail the run.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.justified)
    }
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }
    /// Justified (allowlisted-with-reason) findings.
    pub fn justified_count(&self) -> usize {
        self.findings.iter().filter(|f| f.justified).count()
    }
    /// Render as `xst-lint-report/1` JSON.
    pub fn to_json(&self, deny_all: bool) -> String {
        report::render(self, deny_all)
    }
}

/// Run every rule and pass over the workspace at `root`.
pub fn run_lint(root: &Path) -> std::io::Result<LintReport> {
    let files = source_files(root)?;
    let mut records = Vec::with_capacity(files.len());
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let view = SourceView::new(&source);
        let model = syntax::parse(&view);
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        records.push(FileRecord {
            path: path.clone(),
            rel,
            crate_name,
            source,
            view,
            model,
        });
    }
    let ws = Workspace { files: records };

    let mut findings = Vec::new();
    for rec in &ws.files {
        token_rules(rec, &mut findings);
    }
    // Which justification comments a pass actually consumed, as
    // (file index, justification index).
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    locks::analyze(&ws, &mut findings, &mut used);
    faults::analyze(&ws, &mut findings, &mut used);
    proto::analyze(&ws, &mut findings, &mut used);
    justification_hygiene(&ws, &used, &mut findings);

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule)
            .cmp(&(&b.file, b.line, &b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(LintReport {
        root: root.to_path_buf(),
        files_checked: ws.files.len(),
        findings,
    })
}

/// Justifications must name a justifiable rule, carry a reason, and be
/// used by an actual finding — a stale or vacuous exemption is an error.
fn justification_hygiene(
    ws: &Workspace,
    used: &BTreeSet<(usize, usize)>,
    findings: &mut Vec<Finding>,
) {
    for (fi, rec) in ws.files.iter().enumerate() {
        for (ji, j) in rec.view.justifications.iter().enumerate() {
            if !JUSTIFIABLE_RULES.contains(&j.rule.as_str()) {
                push_finding(
                    findings,
                    &rec.rel,
                    j.line,
                    "justification",
                    format!(
                        "`// lint: {}:` is not a justifiable rule (expected one of: {})",
                        j.rule,
                        JUSTIFIABLE_RULES.join(", ")
                    ),
                    false,
                );
            } else if j.why.len() < 10 {
                push_finding(
                    findings,
                    &rec.rel,
                    j.line,
                    "justification",
                    format!(
                        "justification for `{}` needs a real reason (got {:?})",
                        j.rule, j.why
                    ),
                    false,
                );
            } else if !used.contains(&(fi, ji)) {
                push_finding(
                    findings,
                    &rec.rel,
                    j.line,
                    "justification",
                    format!(
                        "unused justification for `{}` — the finding it excused is gone; remove the comment",
                        j.rule
                    ),
                    false,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Token rules (ported unchanged from the PR 5 scanner).
// ---------------------------------------------------------------------

/// Crates whose non-test sources must never panic.
const NO_PANIC_CRATES: &[&str] = &["xst-storage", "xst-core", "xst-server", "xst-client"];
/// Forbidden panic tokens (checked on the comment/string-blanked view).
pub const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// File-name fragments marking deterministic-replay modules.
const DETERMINISTIC_MODULES: &[&str] = &["fault", "sched", "harness"];
/// Forbidden nondeterminism tokens, matched on word boundaries.
const NONDETERMINISM_TOKENS: &[&str] = &["Instant", "SystemTime", "rand"];

/// Where the canonical metric-name constants live.
const METRIC_NAMES_FILE: &str = "crates/xst-obs/src/names.rs";

/// Registry registration methods; a call site must pass a `names::`
/// constant as the family name.
const REGISTRATION_METHODS: &[&str] = &[".counter(", ".gauge(", ".histogram("];
/// How far back a registration method looks for its `registry()` receiver
/// and how far forward for the `names::` constant (call sites wrap).
const REGISTRATION_WINDOW: usize = 120;

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Slice `code` around `[start, end)`, widening to char boundaries so a
/// blanked multi-byte char can never split the window.
pub fn window(code: &str, mut start: usize, mut end: usize) -> &str {
    end = end.min(code.len());
    while start > 0 && !code.is_char_boundary(start) {
        start -= 1;
    }
    while end < code.len() && !code.is_char_boundary(end) {
        end += 1;
    }
    &code[start..end]
}

/// Find `token` in `code` on word boundaries (when `word` is set),
/// returning byte offsets.
pub fn find_token(code: &str, token: &str, word: bool) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + 1;
        if word {
            let before_ok = at == 0 || !is_word_char(bytes[at - 1]);
            let end = at + token.len();
            let after_ok = end >= bytes.len() || !is_word_char(bytes[end]);
            if !(before_ok && after_ok) {
                continue;
            }
        }
        out.push(at);
    }
    out
}

/// Is this (file, token) pair on the legacy static allowlist?
pub fn allowlisted(file: &str, token: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(suffix, t)| file.ends_with(suffix) && token == *t)
}

/// Run the four token rules over one file. Statically-allowlisted
/// findings are marked justified here; `--deny-all` re-raises them at
/// the CLI layer.
pub fn token_rules(rec: &FileRecord, out: &mut Vec<Finding>) {
    let view = &rec.view;
    let rel_str = &rec.rel;
    let crate_name = rec.crate_name.as_str();
    let file_name = rec
        .path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();

    if NO_PANIC_CRATES.contains(&crate_name) {
        for token in PANIC_TOKENS {
            for at in find_token(&view.code, token, false) {
                if view.in_test(at) {
                    continue;
                }
                push_finding(
                    out,
                    rel_str,
                    view.line_of(at),
                    "no-panic",
                    format!(
                        "`{token}` in non-test {crate_name} code; return a structured error instead"
                    ),
                    allowlisted(rel_str, token),
                );
            }
        }
    }

    if DETERMINISTIC_MODULES.iter().any(|m| file_name.contains(m)) {
        for token in NONDETERMINISM_TOKENS {
            for at in find_token(&view.code, token, true) {
                if view.in_test(at) {
                    continue;
                }
                push_finding(
                    out,
                    rel_str,
                    view.line_of(at),
                    "determinism",
                    format!(
                        "`{token}` inside deterministic module `{file_name}`; \
                         deterministic replay must not read clocks or ambient entropy"
                    ),
                    allowlisted(rel_str, token),
                );
            }
        }
    }

    let is_names_file = rel_str == METRIC_NAMES_FILE;
    let mut seen_names: Vec<&str> = Vec::new();
    for lit in &view.strings {
        if view.in_test(lit.at) || !lit.text.starts_with("xst_") {
            continue;
        }
        if is_names_file {
            if seen_names.contains(&lit.text.as_str()) {
                push_finding(
                    out,
                    rel_str,
                    view.line_of(lit.at),
                    "metric-names",
                    format!(
                        "metric name \"{}\" is defined more than once in names.rs",
                        lit.text
                    ),
                    allowlisted(rel_str, &lit.text),
                );
            }
            seen_names.push(&lit.text);
        } else {
            push_finding(
                out,
                rel_str,
                view.line_of(lit.at),
                "metric-names",
                format!(
                    "metric-name literal \"{}\" outside {METRIC_NAMES_FILE}; \
                     use the canonical constant from xst_obs::names",
                    lit.text
                ),
                allowlisted(rel_str, &lit.text),
            );
        }
    }

    for method in REGISTRATION_METHODS {
        for at in find_token(&view.code, method, false) {
            if view.in_test(at) {
                continue;
            }
            // Only `registry().counter(...)`-shaped calls register a
            // family; a method merely named `counter` elsewhere is fine.
            // The receiver must directly precede the method (modulo the
            // whitespace rustfmt wraps with).
            let before = window(&view.code, at.saturating_sub(REGISTRATION_WINDOW), at);
            if !before.trim_end().ends_with("registry()") {
                continue;
            }
            // The family name is the first argument: scan it alone, so a
            // `names::` in the *next* statement can't vouch for this one.
            let after = window(
                &view.code,
                at + method.len(),
                at + method.len() + REGISTRATION_WINDOW,
            );
            let first_arg = &after[..after.find([',', ')']).unwrap_or(after.len())];
            if !first_arg.contains("names::") {
                push_finding(
                    out,
                    rel_str,
                    view.line_of(at),
                    "registered-metrics",
                    format!(
                        "registration `registry(){method}...)` without a `names::` constant; \
                         add the family to xst_obs::names and register through it"
                    ),
                    allowlisted(rel_str, method),
                );
            }
        }
    }
}

/// Load a single file into a [`FileRecord`] (used by tests).
pub fn load_file(path: &Path, rel: &str) -> std::io::Result<FileRecord> {
    let source = std::fs::read_to_string(path)?;
    let view = SourceView::new(&source);
    let model = syntax::parse(&view);
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    Ok(FileRecord {
        path: path.to_path_buf(),
        rel: rel.to_string(),
        crate_name,
        source,
        view,
        model,
    })
}

/// Collect every `.rs` file under `crates/*/src`, skipping `xst-lint`
/// itself (its rule tables necessarily spell the forbidden tokens).
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path();
        if dir.file_name().is_some_and(|n| n == "xst-lint") {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_finder_respects_word_boundaries() {
        let code = "let operand = rand::random(); branding";
        assert_eq!(find_token(code, "rand", true).len(), 1);
        assert!(find_token(code, "rand", false).len() >= 3);
    }

    #[test]
    fn panic_tokens_do_not_match_similar_identifiers() {
        // `unwrap_or_else` and a method *named* expect_char are fine; the
        // forbidden tokens are the exact call forms.
        let code = "x.unwrap_or_else(f); self.expect_char('{');";
        for t in PANIC_TOKENS {
            assert_eq!(find_token(code, t, false).len(), 0, "{t}");
        }
        assert_eq!(find_token("x.unwrap();", ".unwrap()", false).len(), 1);
        assert_eq!(find_token("x.expect(\"m\");", ".expect(", false).len(), 1);
        assert_eq!(find_token("panic!(\"m\");", "panic!", false).len(), 1);
    }

    #[test]
    fn allowlist_ships_empty() {
        assert!(ALLOWLIST.is_empty());
    }

    #[test]
    fn window_respects_char_boundaries() {
        let code = "ab⟨cd⟩ef";
        // Offsets inside the 3-byte '⟨' widen instead of panicking.
        assert_eq!(window(code, 3, 4), "⟨");
        assert_eq!(window(code, 0, 100), code);
    }

    #[test]
    fn registration_requires_names_constant() {
        let path = std::env::temp_dir().join("xst_lint_registration_check.rs");
        std::fs::write(
            &path,
            "fn bad() { let c = registry().counter(\"plain_total\", \"h\"); }\n\
             fn good() { let c = registry().counter(names::OK_TOTAL, \"h\"); }\n\
             fn wrapped() {\n    let h = registry().histogram(\n        \
             xst_obs::names::OK_NS,\n        \"h\",\n    );\n}\n\
             fn unrelated(c: &Tally) { c.counter(\"not a registration\"); }\n",
        )
        .unwrap();
        let rec = load_file(&path, "crates/xst-fake/src/fake.rs").unwrap();
        std::fs::remove_file(&path).ok();
        let mut out = Vec::new();
        token_rules(&rec, &mut out);
        let regs: Vec<_> = out
            .iter()
            .filter(|v| v.rule == "registered-metrics")
            .collect();
        assert_eq!(regs.len(), 1, "only the literal registration fires");
        assert_eq!(regs[0].line, 1);
    }
}
