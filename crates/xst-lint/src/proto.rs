//! Pass 4: protocol-dispatch exhaustiveness.
//!
//! The wire protocol encodes request/response kinds as literal tag bytes
//! in `proto.rs` match arms. This pass recovers three mappings without
//! running anything:
//!
//! * variant -> encode tag (the first `push(<int>)` in each
//!   `Request::X`/`Response::X` arm of the encode fn),
//! * decode tag -> variant (each `<int> =>` arm of the decode fn that
//!   constructs a variant; pure error arms are skipped),
//! * the set of `Request::X` patterns dispatched in `Session::handle`.
//!
//! It then checks: encode tags are a bijection (no duplicate or missing
//! tags), decode agrees with encode tag-for-tag, every request variant
//! is dispatched by name in `handle` (a `_ =>` wildcard cannot silently
//! swallow a new kind — the by-name check still fails), and every
//! variant whose doc comment marks it `v2+` is version-gated in its
//! dispatch arm (`v2_only(` / `self.version`) or carries a
//! `// lint: version-gate: <why>` justification.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{self, FnDecl};
use crate::{push_finding, FileRecord, Workspace};

struct Variant {
    name: String,
    /// Offset of the variant name in the blanked code.
    at: usize,
    /// Marked "v2+" in its doc comment.
    v2: bool,
}

pub fn analyze(
    ws: &Workspace,
    findings: &mut Vec<crate::Finding>,
    used: &mut BTreeSet<(usize, usize)>,
) {
    let proto = ws
        .files
        .iter()
        .position(|r| r.crate_name == "xst-server" && r.rel.ends_with("src/proto.rs"));
    let session = ws
        .files
        .iter()
        .position(|r| r.crate_name == "xst-server" && r.rel.ends_with("src/session.rs"));
    let Some(pi) = proto else { return };
    let prec = &ws.files[pi];

    for (enum_name, encode_fns, decode_fns) in [
        (
            "Request",
            &["encode_into", "encode"][..],
            &["decode_body", "decode"][..],
        ),
        ("Response", &["encode"][..], &["decode"][..]),
    ] {
        let Some(variants) = parse_enum(prec, enum_name) else {
            push_finding(
                findings,
                &prec.rel,
                1,
                "proto-dispatch",
                format!("cannot locate `enum {enum_name}` in proto.rs"),
                false,
            );
            continue;
        };
        let encode = find_impl_fn(prec, enum_name, encode_fns);
        let decode = find_impl_fn(prec, enum_name, decode_fns);
        let Some(encode) = encode else {
            push_finding(
                findings,
                &prec.rel,
                1,
                "proto-dispatch",
                format!("cannot locate the `{enum_name}` encode fn in proto.rs"),
                false,
            );
            continue;
        };
        let Some(decode) = decode else {
            push_finding(
                findings,
                &prec.rel,
                1,
                "proto-dispatch",
                format!("cannot locate the `{enum_name}` decode fn in proto.rs"),
                false,
            );
            continue;
        };

        let enc_map = encode_tags(prec, enum_name, encode);
        let dec_map = decode_tags(prec, enum_name, decode);

        // Encode side: every variant tagged, tags unique.
        let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for v in &variants {
            match enc_map.get(&v.name) {
                Some(&(tag, _)) => by_tag.entry(tag).or_default().push(&v.name),
                None => push_finding(
                    findings,
                    &prec.rel,
                    prec.view.line_of(v.at),
                    "proto-dispatch",
                    format!("`{enum_name}::{}` has no encode tag", v.name),
                    false,
                ),
            }
        }
        for (tag, names) in &by_tag {
            if names.len() > 1 {
                let joined = names
                    .iter()
                    .map(|n| format!("`{enum_name}::{n}`"))
                    .collect::<Vec<_>>()
                    .join(" and ");
                push_finding(
                    findings,
                    &prec.rel,
                    prec.view.line_of(enc_map[names[1]].1),
                    "proto-dispatch",
                    format!("{joined} both encode tag {tag}"),
                    false,
                );
            }
        }
        // Decode side must mirror encode, tag for tag.
        for (name, &(tag, at)) in &enc_map {
            match dec_map.get(&tag) {
                None => push_finding(
                    findings,
                    &prec.rel,
                    prec.view.line_of(at),
                    "proto-dispatch",
                    format!("tag {tag} (`{enum_name}::{name}`) has no decode arm"),
                    false,
                ),
                Some((dname, dat)) if dname != name => push_finding(
                    findings,
                    &prec.rel,
                    prec.view.line_of(*dat),
                    "proto-dispatch",
                    format!(
                        "tag {tag} encodes `{enum_name}::{name}` but decodes `{enum_name}::{dname}`"
                    ),
                    false,
                ),
                _ => {}
            }
        }
        for (tag, (dname, dat)) in &dec_map {
            if enc_map.get(dname).is_none_or(|(t, _)| t != tag) && !by_tag.contains_key(tag) {
                push_finding(
                    findings,
                    &prec.rel,
                    prec.view.line_of(*dat),
                    "proto-dispatch",
                    format!(
                        "decode arm for tag {tag} constructs `{enum_name}::{dname}` but nothing encodes that tag"
                    ),
                    false,
                );
            }
        }

        // Dispatch + version gates: requests only.
        if enum_name != "Request" {
            continue;
        }
        let Some(si) = session else {
            push_finding(
                findings,
                &prec.rel,
                1,
                "proto-dispatch",
                "cannot locate session.rs next to proto.rs".to_string(),
                false,
            );
            continue;
        };
        let srec = &ws.files[si];
        let Some(handle) = find_impl_fn(srec, "Session", &["handle"]) else {
            push_finding(
                findings,
                &srec.rel,
                1,
                "proto-dispatch",
                "cannot locate `Session::handle` in session.rs".to_string(),
                false,
            );
            continue;
        };
        let body = handle.body.expect("handle has a body");
        let code = &srec.view.code;
        // Offsets of each `Request::X` pattern in handle, in order.
        let mut occurrences: Vec<(usize, String)> = Vec::new();
        let mut from = body.0;
        while let Some(p) = code[from..body.1].find("Request::") {
            let at = from + p;
            from = at + "Request::".len();
            let b = code.as_bytes();
            if !b.get(from).is_some_and(|c| c.is_ascii_uppercase()) {
                continue;
            }
            let mut k = from;
            while k < b.len() && syntax::is_ident_char(b[k]) {
                k += 1;
            }
            occurrences.push((at, code[from..k].to_string()));
        }
        for v in &variants {
            let occ: Vec<&(usize, String)> =
                occurrences.iter().filter(|(_, n)| *n == v.name).collect();
            if occ.is_empty() {
                push_finding(
                    findings,
                    &srec.rel,
                    srec.view.line_of(body.0),
                    "proto-dispatch",
                    format!(
                        "`Request::{}` is not dispatched in `Session::handle`",
                        v.name
                    ),
                    false,
                );
                continue;
            }
            if !v.v2 {
                continue;
            }
            // Arm span: from the first occurrence to the next different
            // occurrence (or end of handle).
            let start = occ[0].0;
            let arm_end = occurrences
                .iter()
                .filter(|(a, n)| *a > start && *n != v.name)
                .map(|(a, _)| *a)
                .min()
                .unwrap_or(body.1);
            let arm = &code[start..arm_end];
            if arm.contains("v2_only(") || arm.contains("self.version") {
                continue;
            }
            let line = srec.view.line_of(start);
            let js = srec
                .view
                .justifications_on("version-gate", &[line, line.saturating_sub(1)]);
            let justified = !js.is_empty();
            for j in js {
                used.insert((si, j));
            }
            push_finding(
                findings,
                &srec.rel,
                line,
                "version-gate",
                format!(
                    "`Request::{}` is marked v2+ in proto.rs but its `Session::handle` arm has no version gate",
                    v.name
                ),
                justified,
            );
        }
    }
}

/// Parse the named enum's variants, with "v2+" doc markers read from the
/// *raw* source (doc comments are blanked in the code view).
fn parse_enum(rec: &FileRecord, name: &str) -> Option<Vec<Variant>> {
    let code = &rec.view.code;
    let b = code.as_bytes();
    let mut from = 0;
    let open = loop {
        let p = code[from..].find("enum ")?;
        let at = from + p;
        from = at + 1;
        if at > 0 && syntax::is_ident_char(b[at - 1]) {
            continue;
        }
        let rest = code[at + "enum ".len()..].trim_start();
        if rest.starts_with(name)
            && !rest[name.len()..].starts_with(|c: char| syntax::is_ident_char(c as u8))
        {
            let brace = code[at..].find('{')? + at;
            break brace;
        }
    };
    let close = syntax::matching(b, open);
    let mut variants = Vec::new();
    let mut prev_end = open + 1;
    let mut depth = 0isize;
    let mut i = open + 1;
    let mut piece_start = open + 1;
    while i <= close {
        let c = b[i];
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' if i < close => depth -= 1,
            _ => {}
        }
        if (c == b',' && depth == 0) || i == close {
            let piece = &code[piece_start..i];
            if let Some(v) = variant_name(piece, piece_start) {
                let doc = &rec.source[prev_end..v.0.min(rec.source.len())];
                variants.push(Variant {
                    name: v.1,
                    at: v.0,
                    v2: doc.contains("v2+"),
                });
                prev_end = i + 1;
            }
            piece_start = i + 1;
        }
        i += 1;
    }
    Some(variants)
}

/// First identifier of an enum-variant fragment (skipping blanked attrs).
fn variant_name(piece: &str, base: usize) -> Option<(usize, String)> {
    let b = piece.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'#' {
            // `#[...]` attribute: skip the bracket group.
            while i < b.len() && b[i] != b'[' {
                i += 1;
            }
            if i < b.len() {
                i = syntax::matching(b, i) + 1;
            }
            continue;
        }
        if b[i].is_ascii_uppercase() {
            let mut k = i;
            while k < b.len() && syntax::is_ident_char(b[k]) {
                k += 1;
            }
            return Some((base + i, piece[i..k].to_string()));
        }
        if b[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        return None;
    }
    None
}

/// Find a fn by candidate names within `impl ty`.
fn find_impl_fn<'a>(rec: &'a FileRecord, ty: &str, names: &[&str]) -> Option<&'a FnDecl> {
    for n in names {
        if let Some(f) = rec
            .model
            .fns
            .iter()
            .find(|f| f.name == *n && f.self_type.as_deref() == Some(ty) && f.body.is_some())
        {
            return Some(f);
        }
    }
    None
}

/// variant -> (tag, offset) from the encode fn: the first `push(<int>)`
/// after each `Enum::X` pattern.
fn encode_tags(rec: &FileRecord, enum_name: &str, f: &FnDecl) -> BTreeMap<String, (u64, usize)> {
    let body = f.body.expect("encode fn has a body");
    let code = &rec.view.code;
    let b = code.as_bytes();
    let pat = format!("{enum_name}::");
    let mut occ: Vec<(usize, String)> = Vec::new();
    let mut from = body.0;
    while let Some(p) = code[from..body.1].find(&pat) {
        let at = from + p;
        from = at + pat.len();
        if !b.get(from).is_some_and(|c| c.is_ascii_uppercase()) {
            continue;
        }
        let mut k = from;
        while k < b.len() && syntax::is_ident_char(b[k]) {
            k += 1;
        }
        occ.push((at, code[from..k].to_string()));
    }
    let mut out = BTreeMap::new();
    for (i, (at, name)) in occ.iter().enumerate() {
        let arm_end = occ.get(i + 1).map(|(a, _)| *a).unwrap_or(body.1);
        let span = &code[*at..arm_end];
        let mut sfrom = 0;
        while let Some(p) = span[sfrom..].find("push(") {
            let pa = sfrom + p;
            sfrom = pa + 1;
            let arg = span[pa + "push(".len()..]
                .split(')')
                .next()
                .unwrap_or("")
                .trim();
            if let Ok(tag) = arg.parse::<u64>() {
                out.entry(name.clone()).or_insert((tag, *at));
                break;
            }
        }
    }
    out
}

/// tag -> (variant, offset) from the decode fn: each integer-literal
/// match arm that constructs `Enum::X` (pure error arms are skipped).
fn decode_tags(rec: &FileRecord, enum_name: &str, f: &FnDecl) -> BTreeMap<u64, (String, usize)> {
    let body = f.body.expect("decode fn has a body");
    let code = &rec.view.code;
    let b = code.as_bytes();
    // Arm labels: integer literal followed (modulo an `if` guard) by `=>`.
    let mut labels: Vec<(usize, u64)> = Vec::new();
    let mut i = body.0;
    while i < body.1.min(b.len()) {
        if b[i].is_ascii_digit()
            && (i == 0 || !syntax::is_ident_char(b[i - 1]))
            && (i == 0 || b[i - 1] != b'.')
        {
            let mut k = i;
            while k < b.len() && b[k].is_ascii_digit() {
                k += 1;
            }
            if k < b.len() && (b[k] == b'.' || syntax::is_ident_char(b[k])) {
                i = k;
                continue;
            }
            let mut q = k;
            while q < b.len() && b[q].is_ascii_whitespace() {
                q += 1;
            }
            let is_arm = if q + 1 < b.len() && b[q] == b'=' && b[q + 1] == b'>' {
                true
            } else if code[q..].starts_with("if ") {
                code[q..(q + 200).min(code.len())].contains("=>")
            } else {
                false
            };
            if is_arm {
                if let Ok(tag) = code[i..k].parse::<u64>() {
                    labels.push((i, tag));
                }
            }
            i = k;
        } else {
            i += 1;
        }
    }
    let pat = format!("{enum_name}::");
    let mut out = BTreeMap::new();
    for (li, (at, tag)) in labels.iter().enumerate() {
        let end = labels.get(li + 1).map(|(a, _)| *a).unwrap_or(body.1);
        // First *variant* construction in the arm: `Enum::Upper`. A
        // lowercase ident after `::` is an associated fn (e.g. the
        // recursive `Request::decode_body` inside the Traced arm).
        let mut sfrom = *at;
        while let Some(p) = code[sfrom..end].find(&pat) {
            let vstart = sfrom + p + pat.len();
            sfrom = vstart;
            if !b.get(vstart).is_some_and(|c| c.is_ascii_uppercase()) {
                continue;
            }
            let mut k = vstart;
            while k < b.len() && syntax::is_ident_char(b[k]) {
                k += 1;
            }
            out.entry(*tag)
                .or_insert((code[vstart..k].to_string(), *at));
            break;
        }
    }
    out
}
