//! Passes 1 and 2: lock-order (deadlock-cycle) analysis and the
//! held-lock-across-blocking-op lint.
//!
//! A lock is identified as `(declaring file, field name)` — every
//! `Mutex`/`RwLock` struct field in the workspace. Since those fields are
//! private, they can only be acquired from their declaring module, so an
//! identifier directly left of `.lock()` / `.read()` / `.write()` that
//! names such a field *in the same file* is an acquisition of that lock.
//!
//! Guard lifetimes are approximated without type inference:
//!
//! * `let g = <...>.lock()` followed only by guard-preserving adapters
//!   (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`) binds a named
//!   guard that lives to the end of its enclosing block, truncated at an
//!   explicit `drop(g)`.
//! * Any other acquisition is a temporary guard living to the end of its
//!   statement.
//!
//! Acquisitions-while-held and blocking operations propagate through an
//! intra-workspace call graph resolved by method name + arity, filtered
//! by a receiver hint (the declared type of the named field, or the
//! `impl` type for `self`). Ambiguous calls with no hint are dropped —
//! the analysis deliberately under-approximates rather than invent
//! edges. Condvar waits (`wait`/`wait_timeout`) are not blocking ops:
//! waiting releases the guard by design.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{self, Call};
use crate::{push_finding, Workspace};

/// Blocking operations recognised only as zero-argument calls (so
/// `path.join(..)` or `file.read(buf)` cannot match).
const BLOCKING_ZERO_ARG: &[&str] = &["sync", "flush", "join", "sync_all", "sync_data"];
/// Blocking operations recognised at any arity.
const BLOCKING_ANY_ARG: &[&str] = &[
    "append_batch",
    "checkpoint_mark",
    "write_all",
    "read_exact",
    "write_frame",
    "read_frame",
    "fsync",
];
/// Post-`.lock()` adapters that still hand back the guard.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// One lock: a `Mutex`/`RwLock` field, named by its declaring struct.
struct Lock {
    strukt: String,
    field: String,
}

/// One live guard within a function body.
struct Guard {
    lock: usize,
    /// Offset of the acquisition call name.
    at: usize,
    line: usize,
    /// Half-open span over which the guard is held.
    scope: (usize, usize),
}

/// A call site resolved to zero or more workspace functions.
struct ResolvedCall {
    at: usize,
    targets: Vec<usize>,
}

#[derive(Default)]
struct FnFacts {
    guards: Vec<Guard>,
    calls: Vec<ResolvedCall>,
    /// Blocking ops invoked directly in this body: (name, offset).
    direct_ops: Vec<(String, usize)>,
}

/// Global function table entry.
struct FnEntry {
    file: usize,
    /// Index into that file's `model.fns`.
    idx: usize,
    display: String,
}

pub fn analyze(
    ws: &Workspace,
    findings: &mut Vec<crate::Finding>,
    used: &mut BTreeSet<(usize, usize)>,
) {
    // ---- lock table ---------------------------------------------------
    let mut locks: Vec<Lock> = Vec::new();
    let mut lock_key: BTreeMap<(usize, String), usize> = BTreeMap::new();
    // field name -> declared type texts (workspace-wide receiver hints)
    let mut field_types: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (fi, rec) in ws.files.iter().enumerate() {
        for s in &rec.model.structs {
            for f in &s.fields {
                field_types
                    .entry(f.name.clone())
                    .or_default()
                    .push(f.ty.clone());
                if f.ty.contains("Mutex<") || f.ty.contains("RwLock<") {
                    lock_key.entry((fi, f.name.clone())).or_insert_with(|| {
                        locks.push(Lock {
                            strukt: s.name.clone(),
                            field: f.name.clone(),
                        });
                        locks.len() - 1
                    });
                }
            }
        }
    }

    // ---- function table ----------------------------------------------
    let mut fns: Vec<FnEntry> = Vec::new();
    let mut methods: BTreeMap<(String, usize), Vec<usize>> = BTreeMap::new();
    let mut frees: BTreeMap<(String, usize), Vec<usize>> = BTreeMap::new();
    for (fi, rec) in ws.files.iter().enumerate() {
        for (k, f) in rec.model.fns.iter().enumerate() {
            if f.body.is_none() || rec.view.in_test(f.sig_at) {
                continue;
            }
            let display = match &f.self_type {
                Some(t) => format!("{}::{}", t, f.name),
                None => f.name.clone(),
            };
            let id = fns.len();
            fns.push(FnEntry {
                file: fi,
                idx: k,
                display,
            });
            if f.has_self {
                methods
                    .entry((f.name.clone(), f.arity))
                    .or_default()
                    .push(id);
            } else {
                frees.entry((f.name.clone(), f.arity)).or_default().push(id);
            }
        }
    }

    // ---- per-fn facts -------------------------------------------------
    let mut facts: Vec<FnFacts> = Vec::new();
    for entry in &fns {
        let rec = &ws.files[entry.file];
        let decl = &rec.model.fns[entry.idx];
        let body = decl.body.unwrap();
        let code = &rec.view.code;
        let b = code.as_bytes();
        let mut ff = FnFacts::default();
        for call in syntax::calls_in(code, (body.0 + 1, body.1)) {
            // Acquisition?
            if call.method
                && call.args == 0
                && matches!(call.name.as_str(), "lock" | "read" | "write")
            {
                if let Some(recv) = &call.receiver {
                    if let Some(&lk) = lock_key.get(&(entry.file, recv.clone())) {
                        let scope_end = guard_scope_end(b, code, &call, body);
                        ff.guards.push(Guard {
                            lock: lk,
                            at: call.at,
                            line: rec.view.line_of(call.at),
                            scope: (call.at, scope_end),
                        });
                        continue;
                    }
                }
            }
            // Blocking op?
            if (call.args == 0 && BLOCKING_ZERO_ARG.contains(&call.name.as_str()))
                || BLOCKING_ANY_ARG.contains(&call.name.as_str())
            {
                ff.direct_ops.push((call.name.clone(), call.at));
            }
            // Resolution.
            let targets = resolve(
                &call,
                decl.self_type.as_deref(),
                entry.file,
                &fns,
                &methods,
                &frees,
                &field_types,
                ws,
            );
            if !targets.is_empty() {
                ff.calls.push(ResolvedCall {
                    at: call.at,
                    targets,
                });
            }
        }
        facts.push(ff);
    }

    // ---- transitive closure ------------------------------------------
    // For each fn: locks it (transitively) acquires and blocking ops it
    // (transitively) performs, each with a witness call path.
    let mut trans_locks: Vec<BTreeMap<usize, Vec<String>>> = Vec::with_capacity(fns.len());
    let mut trans_ops: Vec<BTreeMap<String, Vec<String>>> = Vec::with_capacity(fns.len());
    for ff in &facts {
        let mut l = BTreeMap::new();
        for g in &ff.guards {
            l.entry(g.lock).or_insert_with(Vec::new);
        }
        let mut o = BTreeMap::new();
        for (op, _) in &ff.direct_ops {
            o.entry(op.clone()).or_insert_with(Vec::new);
        }
        trans_locks.push(l);
        trans_ops.push(o);
    }
    use std::collections::btree_map::Entry;
    loop {
        let mut changed = false;
        for f in 0..fns.len() {
            for call in &facts[f].calls {
                for &t in &call.targets {
                    if t == f {
                        continue;
                    }
                    let (lt, ot) = (trans_locks[t].clone(), trans_ops[t].clone());
                    for (lk, path) in lt {
                        if let Entry::Vacant(e) = trans_locks[f].entry(lk) {
                            let mut p = vec![fns[t].display.clone()];
                            p.extend(path);
                            e.insert(p);
                            changed = true;
                        }
                    }
                    for (op, path) in ot {
                        if let Entry::Vacant(e) = trans_ops[f].entry(op) {
                            let mut p = vec![fns[t].display.clone()];
                            p.extend(path);
                            e.insert(p);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 1: lock-order edges and cycles --------------------------
    struct Witness {
        file: usize,
        line: usize,
        text: String,
    }
    let mut edges: BTreeMap<(usize, usize), Witness> = BTreeMap::new();
    let lock_name = |l: usize| format!("{}.{}", locks[l].strukt, locks[l].field);
    for f in 0..fns.len() {
        let rec = &ws.files[fns[f].file];
        for g in &facts[f].guards {
            for g2 in &facts[f].guards {
                if g2.at > g.at && g2.at < g.scope.1 {
                    edges.entry((g.lock, g2.lock)).or_insert_with(|| Witness {
                        file: fns[f].file,
                        line: rec.view.line_of(g2.at),
                        text: format!(
                            "`{}` acquired while `{}` is held in `{}`",
                            lock_name(g2.lock),
                            lock_name(g.lock),
                            fns[f].display
                        ),
                    });
                }
            }
            for call in &facts[f].calls {
                if call.at <= g.at || call.at >= g.scope.1 {
                    continue;
                }
                for &t in &call.targets {
                    for (lk, path) in &trans_locks[t] {
                        edges.entry((g.lock, *lk)).or_insert_with(|| Witness {
                            file: fns[f].file,
                            line: rec.view.line_of(call.at),
                            text: format!(
                                "`{}` holds `{}` and calls `{}`{} which acquires `{}`",
                                fns[f].display,
                                lock_name(g.lock),
                                fns[t].display,
                                via(path),
                                lock_name(*lk)
                            ),
                        });
                    }
                }
            }
        }
    }
    for cycle in find_cycles(locks.len(), &edges) {
        let mut path_names: Vec<String> = cycle.iter().map(|&l| lock_name(l)).collect();
        path_names.push(lock_name(cycle[0]));
        let mut wtexts = Vec::new();
        for w in cycle.windows(2) {
            if let Some(wit) = edges.get(&(w[0], w[1])) {
                wtexts.push(format!(
                    "{}:{}: {}",
                    ws.files[wit.file].rel, wit.line, wit.text
                ));
            }
        }
        if let Some(wit) = edges.get(&(cycle[cycle.len() - 1], cycle[0])) {
            wtexts.push(format!(
                "{}:{}: {}",
                ws.files[wit.file].rel, wit.line, wit.text
            ));
        }
        let first = edges
            .get(&(cycle[0], *cycle.get(1).unwrap_or(&cycle[0])))
            .expect("cycle edge exists");
        push_finding(
            findings,
            &ws.files[first.file].rel,
            first.line,
            "lock-cycle",
            format!(
                "lock-order cycle `{}`; witnesses: {}",
                path_names.join(" -> "),
                wtexts.join("; ")
            ),
            false,
        );
    }

    // ---- pass 2: guard held across blocking op ------------------------
    for f in 0..fns.len() {
        let fi = fns[f].file;
        let rec = &ws.files[fi];
        let mut seen_lines: BTreeSet<(usize, usize)> = BTreeSet::new();
        for g in &facts[f].guards {
            let mut events: Vec<(usize, String)> = Vec::new();
            for (op, at) in &facts[f].direct_ops {
                if *at > g.at && *at < g.scope.1 {
                    events.push((rec.view.line_of(*at), format!("blocking `{op}()`")));
                }
            }
            for call in &facts[f].calls {
                if call.at <= g.at || call.at >= g.scope.1 {
                    continue;
                }
                for &t in &call.targets {
                    if let Some((op, path)) = trans_ops[t].iter().next() {
                        let mut full = vec![fns[t].display.clone()];
                        full.extend(path.iter().cloned());
                        events.push((
                            rec.view.line_of(call.at),
                            format!(
                                "`{}()` (reaches blocking `{op}()`{})",
                                fns[t].display,
                                via_tail(&full)
                            ),
                        ));
                        break;
                    }
                }
            }
            for (line, desc) in events {
                if !seen_lines.insert((g.at, line)) {
                    continue;
                }
                let just_lines = [
                    line,
                    line.saturating_sub(1),
                    g.line,
                    g.line.saturating_sub(1),
                ];
                let js = rec.view.justifications_on("lock-across-io", &just_lines);
                let justified = !js.is_empty();
                for j in js {
                    used.insert((fi, j));
                }
                push_finding(
                    findings,
                    &rec.rel,
                    line,
                    "lock-across-io",
                    format!(
                        "guard on `{}` (acquired line {}) held across {desc}",
                        lock_name(g.lock),
                        g.line
                    ),
                    justified,
                );
            }
        }
    }
}

fn via(path: &[String]) -> String {
    if path.is_empty() {
        String::new()
    } else {
        format!(" (via {})", path.join(" -> "))
    }
}

/// Like [`via`] but for a path whose head is already named in the text.
fn via_tail(full: &[String]) -> String {
    if full.len() <= 1 {
        String::new()
    } else {
        format!(" via {}", full[1..].join(" -> "))
    }
}

/// Where the guard produced by acquisition `call` stops being held.
fn guard_scope_end(b: &[u8], code: &str, call: &Call, body: (usize, usize)) -> usize {
    let open = {
        let mut i = call.at + call.name.len();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    let close = syntax::matching(b, open);
    // Walk the adapter chain after `.lock()`.
    let mut i = close + 1;
    let mut adapters_only = true;
    loop {
        let mut j = i;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < b.len() && b[j] == b'?' {
            i = j + 1;
            continue;
        }
        if j >= b.len() || b[j] != b'.' {
            break;
        }
        let name_start = j + 1;
        let mut k = name_start;
        while k < b.len() && syntax::is_ident_char(b[k]) {
            k += 1;
        }
        let name = &code[name_start..k];
        let mut p = k;
        while p < b.len() && b[p].is_ascii_whitespace() {
            p += 1;
        }
        if GUARD_ADAPTERS.contains(&name) && p < b.len() && b[p] == b'(' {
            i = syntax::matching(b, p) + 1;
        } else {
            adapters_only = false;
            break;
        }
    }
    let se = syntax::stmt_end(b, call.at, body.1);
    let ss = syntax::stmt_start(b, call.at, body.0);
    let stmt_head = code[ss..call.at.min(code.len())].trim_start();
    let named =
        adapters_only && code[i..se].trim().is_empty() && stmt_head.starts_with("let ") && {
            let pat = stmt_head["let ".len()..]
                .trim_start()
                .trim_start_matches("mut ")
                .trim_start();
            pat.chars()
                .take_while(|c| *c != '=' && *c != ':')
                .collect::<String>()
                .trim()
                .chars()
                .all(|c| syntax::is_ident_char(c as u8))
        };
    if !named {
        return se;
    }
    // Named guard: held to end of the enclosing block, truncated at an
    // explicit `drop(name)`.
    let name = {
        let pat = stmt_head["let ".len()..]
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start();
        pat.chars()
            .take_while(|c| *c != '=' && *c != ':')
            .collect::<String>()
            .trim()
            .to_string()
    };
    let be = syntax::block_end(b, call.at, body.1);
    let mut from = se;
    while let Some(p) = code[from..be.min(code.len())].find("drop") {
        let at = from + p;
        from = at + 4;
        let before_ok = at == 0 || !syntax::is_ident_char(b[at - 1]);
        let mut q = at + 4;
        while q < b.len() && b[q].is_ascii_whitespace() {
            q += 1;
        }
        if before_ok && q < b.len() && b[q] == b'(' {
            let c = syntax::matching(b, q);
            if code[q + 1..c].trim() == name {
                return at;
            }
        }
    }
    be
}

/// Resolve one call site to workspace function ids. Under-approximates:
/// ambiguous calls with no usable receiver hint resolve to nothing.
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    enclosing_self: Option<&str>,
    file: usize,
    fns: &[FnEntry],
    methods: &BTreeMap<(String, usize), Vec<usize>>,
    frees: &BTreeMap<(String, usize), Vec<usize>>,
    field_types: &BTreeMap<String, Vec<String>>,
    ws: &Workspace,
) -> Vec<usize> {
    let self_type_of = |id: usize| {
        ws.files[fns[id].file].model.fns[fns[id].idx]
            .self_type
            .clone()
    };
    if call.method {
        let Some(cands) = methods.get(&(call.name.clone(), call.args)) else {
            return Vec::new();
        };
        // A usable receiver hint is decisive either way: when it rejects
        // every candidate the call is on some foreign type (`Vec::len`,
        // say) and must NOT fall back to a same-named workspace method.
        match call.receiver.as_deref() {
            Some("self") => {
                if let Some(st) = enclosing_self {
                    return cands
                        .iter()
                        .copied()
                        .filter(|&c| self_type_of(c).as_deref() == Some(st))
                        .collect();
                }
            }
            Some(recv) => {
                if let Some(tys) = field_types.get(recv) {
                    return cands
                        .iter()
                        .copied()
                        .filter(|&c| {
                            self_type_of(c)
                                .map(|st| tys.iter().any(|ty| contains_word(ty, &st)))
                                .unwrap_or(false)
                        })
                        .collect();
                }
            }
            None => {}
        }
        if cands.len() == 1 {
            return cands.clone();
        }
        Vec::new()
    } else {
        let Some(cands) = frees.get(&(call.name.clone(), call.args)) else {
            return Vec::new();
        };
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fns[c].file == file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let crate_name = &ws.files[file].crate_name;
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| &ws.files[fns[c].file].crate_name == crate_name)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if cands.len() == 1 {
            return cands.clone();
        }
        Vec::new()
    }
}

fn contains_word(hay: &str, needle: &str) -> bool {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        from = at + 1;
        let before_ok = at == 0 || !syntax::is_ident_char(b[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= b.len() || !syntax::is_ident_char(b[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Find elementary cycles in the lock graph. Returns each unique cycle
/// once, as a node list starting at its smallest member.
fn find_cycles<W>(n: usize, edges: &BTreeMap<(usize, usize), W>) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        adj[a].push(b);
    }
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    for start in 0..n {
        // DFS for a path start -> ... -> start using only nodes >= start
        // (canonicalises each cycle to its smallest member).
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(start, vec![start])];
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in &adj[node] {
                if next == start {
                    let mut key = path.clone();
                    key.sort_unstable();
                    if seen.insert(key) {
                        out.push(path.clone());
                    }
                } else if next > start && visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    out
}
