//! The workspace scans clean under its own analyzer — the regression
//! test behind the CI `--deny-all` gate — and the JSON report
//! round-trips through the bundled parser.

use std::path::PathBuf;

/// Every justified finding on today's tree, counted. Raising this
/// number means adding a `// lint:` exemption — do that deliberately
/// (see CONTRIBUTING.md), then bump the pin here.
const JUSTIFIED_FINDINGS: usize = 26;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_scans_clean() {
    let report = xst_lint::run_lint(&workspace_root()).expect("workspace lints");
    let errors: Vec<String> = report.errors().map(|f| f.to_string()).collect();
    assert!(
        errors.is_empty(),
        "unjustified lint findings on the tree:\n{}",
        errors.join("\n")
    );
    assert!(report.files_checked > 50, "suspiciously few files scanned");
    assert_eq!(
        report.justified_count(),
        JUSTIFIED_FINDINGS,
        "justified-finding count changed; audit the new (or removed) `// lint:` comments"
    );
}

#[test]
fn json_report_round_trips() {
    let report = xst_lint::run_lint(&workspace_root()).expect("workspace lints");
    let doc = report.to_json(true);
    let v = xst_lint::report::parse(&doc)
        .unwrap_or_else(|at| panic!("report JSON malformed at byte {at}"));
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(xst_lint::report::SCHEMA)
    );
    assert_eq!(v.get("deny_all").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(
        v.get("files_checked").and_then(|n| n.as_num()),
        Some(report.files_checked as f64)
    );
    let findings = v
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    assert_eq!(findings.len(), report.findings.len());
    for (json, finding) in findings.iter().zip(&report.findings) {
        assert_eq!(
            json.get("file").and_then(|s| s.as_str()),
            Some(finding.file.as_str())
        );
        assert_eq!(
            json.get("line").and_then(|n| n.as_num()),
            Some(finding.line as f64)
        );
        assert_eq!(
            json.get("rule").and_then(|s| s.as_str()),
            Some(finding.rule.as_str())
        );
        assert_eq!(
            json.get("justified").and_then(|b| b.as_bool()),
            Some(finding.justified)
        );
    }
    let counts = v.get("counts").expect("counts object");
    assert_eq!(counts.get("errors").and_then(|n| n.as_num()), Some(0.0));
    assert_eq!(
        counts.get("justified").and_then(|n| n.as_num()),
        Some(JUSTIFIED_FINDINGS as f64)
    );
}
