//! Fixture: a guard held across a blocking `sync_all` (positive), the
//! same code with the guard dropped first (negative), and a justified
//! variant exercising the `// lint:` exemption path.

use std::fs::File;
use std::sync::Mutex;

pub struct Wal {
    buf: Mutex<Vec<u8>>,
}

impl Wal {
    /// POSITIVE: the guard is live when `sync_all` blocks.
    pub fn bad(&self, f: &File) {
        let g = self.buf.lock().unwrap();
        let _ = f.sync_all();
        drop(g);
    }

    /// NEGATIVE: the guard is dropped before the blocking call.
    pub fn good(&self, f: &File) {
        let g = self.buf.lock().unwrap();
        drop(g);
        let _ = f.sync_all();
    }

    /// JUSTIFIED: same shape as `bad`, excused with a reason.
    pub fn excused(&self, f: &File) {
        // lint: lock-across-io: ordering requires the flush inside the guard so ack order equals buffer order
        let g = self.buf.lock().unwrap();
        let _ = f.sync_all();
        drop(g);
    }
}
