//! Fixture: a device struct (FaultPlan behind a Mutex) with a numbered
//! write (negative), a raw unnumbered `write_all` (positive), and a
//! justified accessor.

use std::sync::{Arc, Mutex};

pub struct FaultPlan;

impl FaultPlan {
    pub fn check_fault(&self, _site: u32) -> bool {
        false
    }
}

struct DiskInner {
    bytes: Vec<u8>,
    faults: Option<FaultPlan>,
}

pub struct Disk {
    inner: Arc<Mutex<DiskInner>>,
}

impl Disk {
    /// NEGATIVE: claims a numbered fault site before touching bytes.
    pub fn write(&self, data: &[u8]) {
        let mut inner = self.inner.lock();
        if let Some(p) = inner.faults.as_ref() {
            let _ = p.check_fault(7);
        }
        inner.bytes.extend_from_slice(data);
    }

    /// POSITIVE: raw append with no site check.
    pub fn write_all(&self, data: &[u8]) {
        let mut inner = self.inner.lock();
        inner.bytes.extend_from_slice(data);
    }

    /// JUSTIFIED: pure accessor, exempted with a reason.
    // lint: unnumbered-io: length accessor reads no device bytes, so no fault site applies
    pub fn len(&self) -> usize {
        self.inner.lock().bytes.len()
    }
}
