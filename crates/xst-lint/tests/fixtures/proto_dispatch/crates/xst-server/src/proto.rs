//! Fixture wire protocol: four request tags, one response tag. The
//! `Drop` request is deliberately absent from `Session::handle` in
//! session.rs (positive); the v2+ `Stats` request is properly gated
//! there (negative).

pub enum Request {
    Ping,
    Get { key: u64 },
    /// v2+ observability dump.
    Stats,
    Drop,
}

impl Request {
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => {
                out.push(1);
            }
            Request::Get { key } => {
                out.push(2);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Stats => {
                out.push(3);
            }
            Request::Drop => {
                out.push(4);
            }
        }
    }

    pub fn decode_body(tag: u8) -> Option<Request> {
        match tag {
            1 => Some(Request::Ping),
            2 => Some(Request::Get { key: 0 }),
            3 => Some(Request::Stats),
            4 => Some(Request::Drop),
            _ => None,
        }
    }
}

pub enum Response {
    Ok,
    Value { val: u64 },
}

impl Response {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => {
                out.push(1);
            }
            Response::Value { val } => {
                out.push(2);
                out.extend_from_slice(&val.to_le_bytes());
            }
        }
    }

    pub fn decode(tag: u8) -> Option<Response> {
        match tag {
            1 => Some(Response::Ok),
            2 => Some(Response::Value { val: 0 }),
            _ => None,
        }
    }
}
