//! Fixture dispatch: handles Ping, Get, and (gated) Stats — but not
//! `Request::Drop`, which pass 4 must report as undispatched.

use crate::proto::{Request, Response};

pub struct Session {
    version: u32,
}

impl Session {
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Ok,
            Request::Get { key } => Response::Value { val: key },
            Request::Stats => {
                if self.version >= 2 {
                    Response::Value { val: 1 }
                } else {
                    Response::Ok
                }
            }
        }
    }
}
