//! Fixture: a real lock-order cycle (positive) next to a pair of
//! functions that agree on acquisition order (negative).

use std::sync::Mutex;

/// POSITIVE: `flush` holds `pages` while `note` takes `frames`;
/// `audit` holds `frames` while `touch` takes `pages`. That is the
/// textbook AB/BA deadlock and must be reported as a `lock-cycle`.
pub struct Engine {
    pages: Mutex<Vec<u8>>,
    frames: Mutex<Vec<u8>>,
}

impl Engine {
    pub fn flush(&self) {
        let g = self.pages.lock().unwrap();
        self.note();
        drop(g);
    }

    fn note(&self) {
        let f = self.frames.lock().unwrap();
        let _ = f.len();
    }

    pub fn audit(&self) {
        let f = self.frames.lock().unwrap();
        self.touch();
        drop(f);
    }

    fn touch(&self) {
        let g = self.pages.lock().unwrap();
        let _ = g.len();
    }
}

/// NEGATIVE: both paths take `first` before `second` — a consistent
/// global order, so no cycle may be reported for these locks.
pub struct Ordered {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Ordered {
    pub fn step(&self) {
        let a = self.first.lock().unwrap();
        self.finish();
        drop(a);
    }

    fn finish(&self) {
        let b = self.second.lock().unwrap();
        let _ = *b;
    }

    pub fn also(&self) {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        let _ = (*a, *b);
    }
}
