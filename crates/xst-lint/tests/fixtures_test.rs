//! Seeded-defect corpus: each analysis pass must detect its fixture's
//! planted defect with the exact expected diagnostic, must stay silent
//! on the negative variant beside it, and must honor `// lint:`
//! justifications.

use std::path::PathBuf;

fn lint(fixture: &str) -> xst_lint::LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    xst_lint::run_lint(&root).expect("fixture workspace lints")
}

fn errors(report: &xst_lint::LintReport) -> Vec<String> {
    report.errors().map(|f| f.to_string()).collect()
}

#[test]
fn lock_cycle_fixture_reports_the_ab_ba_cycle() {
    let report = lint("lock_cycle");
    assert_eq!(
        errors(&report),
        vec![
            "crates/app/src/lib.rs:17: [lock-cycle] lock-order cycle \
             `Engine.pages -> Engine.frames -> Engine.pages`; witnesses: \
             crates/app/src/lib.rs:17: `Engine::flush` holds `Engine.pages` and calls \
             `Engine::note` which acquires `Engine.frames`; \
             crates/app/src/lib.rs:28: `Engine::audit` holds `Engine.frames` and calls \
             `Engine::touch` which acquires `Engine.pages`"
        ]
    );
    // The consistently-ordered `Ordered` pair is the negative: exactly
    // one finding total, and it never mentions those locks.
    assert_eq!(report.findings.len(), 1);
    assert!(!report.findings[0].message.contains("Ordered"));
}

#[test]
fn lock_across_io_fixture_flags_guard_across_sync_and_honors_justification() {
    let report = lint("lock_across_io");
    assert_eq!(
        errors(&report),
        vec![
            "crates/app/src/lib.rs:16: [lock-across-io] guard on `Wal.buf` \
             (acquired line 15) held across blocking `sync_all()`"
        ]
    );
    // `good` (guard dropped first) is silent; `excused` is justified.
    let justified: Vec<&xst_lint::Finding> =
        report.findings.iter().filter(|f| f.justified).collect();
    assert_eq!(justified.len(), 1);
    assert_eq!(justified[0].line, 31);
    assert_eq!(justified[0].rule, "lock-across-io");
}

#[test]
fn unnumbered_io_fixture_flags_raw_write_and_honors_justification() {
    let report = lint("unnumbered_io");
    assert_eq!(
        errors(&report),
        vec![
            "crates/xst-storage/src/dev.rs:35: [unnumbered-io] `Disk::write_all` \
             touches device state (`.bytes`) without a FaultPlan site check"
        ]
    );
    // `write` claims a site (negative); `len` is justified.
    let justified: Vec<&xst_lint::Finding> =
        report.findings.iter().filter(|f| f.justified).collect();
    assert_eq!(justified.len(), 1);
    assert_eq!(justified[0].line, 42);
    assert!(justified[0].message.contains("`Disk::len`"));
}

#[test]
fn proto_dispatch_fixture_flags_the_unhandled_wire_tag() {
    let report = lint("proto_dispatch");
    assert_eq!(
        errors(&report),
        vec![
            "crates/xst-server/src/session.rs:11: [proto-dispatch] `Request::Drop` \
             is not dispatched in `Session::handle`"
        ]
    );
    // The v2+ `Stats` arm carries a `self.version` gate — the negative:
    // no version-gate finding anywhere.
    assert!(report.findings.iter().all(|f| f.rule != "version-gate"));
    assert_eq!(report.findings.len(), 1);
}

/// Roster: every analysis pass fires at least once across the corpus —
/// a pass that silently stopped matching anything cannot go unnoticed.
#[test]
fn every_pass_fires_on_the_corpus() {
    let mut rules_fired: Vec<String> = Vec::new();
    for fixture in [
        "lock_cycle",
        "lock_across_io",
        "unnumbered_io",
        "proto_dispatch",
    ] {
        for f in &lint(fixture).findings {
            if !rules_fired.contains(&f.rule) {
                rules_fired.push(f.rule.clone());
            }
        }
    }
    for rule in [
        "lock-cycle",
        "lock-across-io",
        "unnumbered-io",
        "proto-dispatch",
    ] {
        assert!(
            rules_fired.iter().any(|r| r == rule),
            "pass `{rule}` never fired"
        );
    }
}

/// Justification hygiene: an exemption comment for a finding that does
/// not exist is itself an error.
#[test]
fn unused_justification_is_an_error() {
    let dir = std::env::temp_dir().join("xst_lint_unused_just/crates/app/src");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("lib.rs"),
        "// lint: lock-across-io: this excuses nothing at all\npub fn fine() {}\n",
    )
    .unwrap();
    let root = std::env::temp_dir().join("xst_lint_unused_just");
    let report = xst_lint::run_lint(&root).unwrap();
    std::fs::remove_dir_all(&root).ok();
    let errs = errors(&report);
    assert_eq!(errs.len(), 1);
    assert!(
        errs[0].contains("[justification] unused justification for `lock-across-io`"),
        "{errs:?}"
    );
}
