//! Logical expressions over the XST operation algebra.
//!
//! An [`Expr`] is a tree of algebra operations over named tables and
//! literal sets. Expressions are what the optimizer rewrites (each rewrite
//! justified by a numbered law of the paper) and what the evaluator
//! executes against a [`Bindings`] environment.

use std::collections::BTreeMap;
use std::fmt;
use xst_core::{ExtendedSet, Scope};

/// Environment mapping table names to materialized extended sets.
pub type Bindings = BTreeMap<String, ExtendedSet>;

/// A logical expression over the XST algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal set.
    Literal(ExtendedSet),
    /// A named table resolved from the [`Bindings`] at evaluation time.
    Table(String),
    /// `A ∪ B`.
    Union(Box<Expr>, Box<Expr>),
    /// `A ∩ B`.
    Intersect(Box<Expr>, Box<Expr>),
    /// `A ~ B`.
    Difference(Box<Expr>, Box<Expr>),
    /// σ-Restriction `R |_σ A` (Definition 7.6).
    Restrict {
        /// The restricted relation.
        r: Box<Expr>,
        /// The restriction spec σ1.
        sigma: ExtendedSet,
        /// The witness set.
        a: Box<Expr>,
    },
    /// σ-Domain `𝔇_σ(R)` (Definition 7.4).
    Domain {
        /// The projected relation.
        r: Box<Expr>,
        /// The projection spec.
        sigma: ExtendedSet,
    },
    /// Image `R[A]_⟨σ1,σ2⟩` (Definition 7.1) — the fused operator.
    Image {
        /// The relation.
        r: Box<Expr>,
        /// The input set.
        a: Box<Expr>,
        /// The process scope.
        scope: Scope,
    },
    /// Relative product (Definition 10.1).
    RelProduct {
        /// Left operand.
        f: Box<Expr>,
        /// Left scope pair `⟨σ1,σ2⟩`.
        sigma: Scope,
        /// Right operand.
        g: Box<Expr>,
        /// Right scope pair `⟨ω1,ω2⟩`.
        omega: Scope,
    },
    /// XST cross product `A ⊗ B` (Definition 9.3).
    Cross(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Literal constructor.
    pub fn lit(s: ExtendedSet) -> Expr {
        Expr::Literal(s)
    }

    /// Table reference constructor.
    pub fn table(name: impl Into<String>) -> Expr {
        Expr::Table(name.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self ~ other`.
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference(Box::new(self), Box::new(other))
    }

    /// `self |_σ a`.
    pub fn restrict(self, sigma: ExtendedSet, a: Expr) -> Expr {
        Expr::Restrict {
            r: Box::new(self),
            sigma,
            a: Box::new(a),
        }
    }

    /// `𝔇_σ(self)`.
    pub fn domain(self, sigma: ExtendedSet) -> Expr {
        Expr::Domain {
            r: Box::new(self),
            sigma,
        }
    }

    /// `self[a]_scope`.
    pub fn image(self, a: Expr, scope: Scope) -> Expr {
        Expr::Image {
            r: Box::new(self),
            a: Box::new(a),
            scope,
        }
    }

    /// Relative product with `other`.
    pub fn rel_product(self, sigma: Scope, other: Expr, omega: Scope) -> Expr {
        Expr::RelProduct {
            f: Box::new(self),
            sigma,
            g: Box::new(other),
            omega,
        }
    }

    /// `self ⊗ other`.
    pub fn cross(self, other: Expr) -> Expr {
        Expr::Cross(Box::new(self), Box::new(other))
    }

    /// Is this a literal empty set?
    pub fn is_empty_literal(&self) -> bool {
        matches!(self, Expr::Literal(s) if s.is_empty())
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Literal(_) | Expr::Table(_) => 0,
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Difference(a, b)
            | Expr::Cross(a, b) => a.size() + b.size(),
            Expr::Restrict { r, a, .. } => r.size() + a.size(),
            Expr::Domain { r, .. } => r.size(),
            Expr::Image { r, a, .. } => r.size() + a.size(),
            Expr::RelProduct { f, g, .. } => f.size() + g.size(),
        }
    }

    /// Names of all referenced tables.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Table(name) => out.push(name),
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Difference(a, b)
            | Expr::Cross(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Expr::Restrict { r, a, .. } => {
                r.collect_tables(out);
                a.collect_tables(out);
            }
            Expr::Domain { r, .. } => r.collect_tables(out),
            Expr::Image { r, a, .. } => {
                r.collect_tables(out);
                a.collect_tables(out);
            }
            Expr::RelProduct { f, g, .. } => {
                f.collect_tables(out);
                g.collect_tables(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(s) => {
                if s.card() <= 4 {
                    write!(f, "{s}")
                } else {
                    write!(f, "⟪literal:{} members⟫", s.card())
                }
            }
            Expr::Table(name) => write!(f, "{name}"),
            Expr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Expr::Difference(a, b) => write!(f, "({a} ~ {b})"),
            Expr::Restrict { r, sigma, a } => write!(f, "({r} |_{sigma} {a})"),
            Expr::Domain { r, sigma } => write!(f, "𝔇_{sigma}({r})"),
            Expr::Image { r, a, scope } => {
                write!(f, "{r}[{a}]_⟨{}, {}⟩", scope.sigma1, scope.sigma2)
            }
            Expr::RelProduct { f: l, g: r, .. } => write!(f, "({l} / {r})"),
            Expr::Cross(a, b) => write!(f, "({a} ⊗ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::{xset, xtuple};

    #[test]
    fn builders_compose() {
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        assert_eq!(e.size(), 4);
        assert_eq!(e.tables(), vec!["a", "f"]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let s = e.to_string();
        assert!(s.contains("𝔇_"), "{s}");
        assert!(s.contains("f |_"), "{s}");
    }

    #[test]
    fn large_literals_abbreviate() {
        let big = ExtendedSet::classical((0..10).map(xst_core::Value::Int));
        let s = Expr::lit(big).to_string();
        assert!(s.contains("10 members"), "{s}");
        let small = Expr::lit(xset![1, 2]).to_string();
        assert!(small.contains('{'), "{small}");
    }

    #[test]
    fn empty_literal_detection() {
        assert!(Expr::lit(ExtendedSet::empty()).is_empty_literal());
        assert!(!Expr::lit(xset![1]).is_empty_literal());
        assert!(!Expr::table("t").is_empty_literal());
    }

    #[test]
    fn tables_dedup() {
        let e = Expr::table("t").union(Expr::table("t"));
        assert_eq!(e.tables(), vec!["t"]);
    }
}
