//! Rewrite rules, each justified by a numbered law of the paper.
//!
//! | rule | law |
//! |---|---|
//! | [`ImageFusion`] | Consequence C.1(f): `Q\[A\]_⟨σ,γ⟩ = 𝔇_γ(Q |_σ A)` |
//! | [`EmptyPrune`] | C.1(g) and 7.1(e): empty operands / specs collapse |
//! | [`BooleanIdempotence`] | `A∪A = A`, `A∩A = A`, `A~A = ∅` |
//! | [`ImageUnionMerge`] | C.1(i): `(Q∪R)\[A\]_σ = Q\[A\]_σ ∪ R\[A\]_σ`, applied right-to-left |
//! | [`InputUnionMerge`] | C.1(a): `Q\[A∪B\]_σ = Q\[A\]_σ ∪ Q\[B\]_σ`, applied right-to-left |
//! | [`DomainFusion`] | Definitions 7.3/7.4: `𝔇_σ(𝔇_ω(R)) = 𝔇_{ω;σ}(R)` |
//! | [`CompositionFusion`] | Theorem 11.2: nested applications fuse into one relative product |

use crate::expr::Expr;
use xst_analyze::{analyze, AnalysisEnv, Emptiness};
use xst_core::process::Process;
use xst_core::{ExtendedSet, Member, Scope};

/// A rewrite rule: may propose a replacement for one node.
pub trait Rule {
    /// Rule name shown in the optimizer trace.
    fn name(&self) -> &'static str;
    /// The paper law justifying the rewrite.
    fn law(&self) -> &'static str;
    /// Attempt to rewrite this node (children are already optimized).
    fn apply(&self, expr: &Expr) -> Option<Expr>;
}

/// Fuse `𝔇_σ2(R |_σ1 A)` into the single-pass `R[A]_⟨σ1,σ2⟩` operator.
pub struct ImageFusion;

impl Rule for ImageFusion {
    fn name(&self) -> &'static str {
        "image-fusion"
    }
    fn law(&self) -> &'static str {
        "Consequence C.1(f)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Domain { r, sigma: sigma2 } = expr else {
            return None;
        };
        let Expr::Restrict {
            r: inner,
            sigma: sigma1,
            a,
        } = r.as_ref()
        else {
            return None;
        };
        Some(Expr::Image {
            r: inner.clone(),
            a: a.clone(),
            scope: Scope::new(sigma1.clone(), sigma2.clone()),
        })
    }
}

/// Collapse operations with statically-empty operands or specs.
pub struct EmptyPrune;

impl Rule for EmptyPrune {
    fn name(&self) -> &'static str {
        "empty-prune"
    }
    fn law(&self) -> &'static str {
        "Consequences C.1(g), 7.1(e)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let empty = || Expr::lit(ExtendedSet::empty());
        match expr {
            Expr::Union(a, b) if a.is_empty_literal() => Some(b.as_ref().clone()),
            Expr::Union(a, b) if b.is_empty_literal() => Some(a.as_ref().clone()),
            Expr::Intersect(a, b) if a.is_empty_literal() || b.is_empty_literal() => Some(empty()),
            Expr::Difference(a, _) if a.is_empty_literal() => Some(empty()),
            Expr::Difference(a, b) if b.is_empty_literal() => Some(a.as_ref().clone()),
            Expr::Restrict { r, a, .. } if r.is_empty_literal() || a.is_empty_literal() => {
                Some(empty())
            }
            Expr::Restrict { sigma, .. } if sigma.is_empty() => Some(empty()),
            Expr::Domain { r, .. } if r.is_empty_literal() => Some(empty()),
            Expr::Domain { sigma, .. } if sigma.is_empty() => Some(empty()),
            Expr::Image { r, a, .. } if r.is_empty_literal() || a.is_empty_literal() => {
                Some(empty())
            }
            Expr::Image { scope, .. } if scope.sigma1.is_empty() || scope.sigma2.is_empty() => {
                Some(empty())
            }
            Expr::Cross(a, b) if a.is_empty_literal() || b.is_empty_literal() => Some(empty()),
            Expr::RelProduct { f, g, .. } if f.is_empty_literal() || g.is_empty_literal() => {
                Some(empty())
            }
            _ => None,
        }
    }
}

/// `A ∪ A = A`, `A ∩ A = A`, `A ~ A = ∅` over structurally equal subtrees.
pub struct BooleanIdempotence;

impl Rule for BooleanIdempotence {
    fn name(&self) -> &'static str {
        "boolean-idempotence"
    }
    fn law(&self) -> &'static str {
        "set idempotence laws"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        match expr {
            Expr::Union(a, b) | Expr::Intersect(a, b) if a == b => Some(a.as_ref().clone()),
            Expr::Difference(a, b) if a == b => Some(Expr::lit(ExtendedSet::empty())),
            _ => None,
        }
    }
}

/// `Q[A]_σ ∪ R[A]_σ → (Q ∪ R)[A]_σ`: one pass over the merged relation.
pub struct ImageUnionMerge;

impl Rule for ImageUnionMerge {
    fn name(&self) -> &'static str {
        "image-union-merge"
    }
    fn law(&self) -> &'static str {
        "Consequence C.1(i)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Union(l, r) = expr else { return None };
        let (
            Expr::Image {
                r: q1,
                a: a1,
                scope: s1,
            },
            Expr::Image {
                r: q2,
                a: a2,
                scope: s2,
            },
        ) = (l.as_ref(), r.as_ref())
        else {
            return None;
        };
        (a1 == a2 && s1 == s2).then(|| Expr::Image {
            r: Box::new(Expr::Union(q1.clone(), q2.clone())),
            a: a1.clone(),
            scope: s1.clone(),
        })
    }
}

/// `Q[A]_σ ∪ Q[B]_σ → Q[A ∪ B]_σ`: one pass over the relation.
pub struct InputUnionMerge;

impl Rule for InputUnionMerge {
    fn name(&self) -> &'static str {
        "input-union-merge"
    }
    fn law(&self) -> &'static str {
        "Consequence C.1(a)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Union(l, r) = expr else { return None };
        let (
            Expr::Image {
                r: q1,
                a: a1,
                scope: s1,
            },
            Expr::Image {
                r: q2,
                a: a2,
                scope: s2,
            },
        ) = (l.as_ref(), r.as_ref())
        else {
            return None;
        };
        (q1 == q2 && s1 == s2).then(|| Expr::Image {
            r: q1.clone(),
            a: Box::new(Expr::Union(a1.clone(), a2.clone())),
            scope: s1.clone(),
        })
    }
}

/// Compose two re-scope specs: re-scoping by `first` then by `second`
/// equals re-scoping once by `spec_compose(first, second)`.
pub fn spec_compose(first: &ExtendedSet, second: &ExtendedSet) -> ExtendedSet {
    // first member (old ↦ mid), second member (mid ↦ new) → (old ↦ new).
    let mut members = Vec::new();
    for m1 in first.members() {
        for new_scope in second.scopes_of(&m1.scope) {
            members.push(Member::new(m1.element.clone(), new_scope.clone()));
        }
    }
    ExtendedSet::from_members(members)
}

/// `𝔇_σ(𝔇_ω(R)) → 𝔇_{ω;σ}(R)`.
pub struct DomainFusion;

impl Rule for DomainFusion {
    fn name(&self) -> &'static str {
        "domain-fusion"
    }
    fn law(&self) -> &'static str {
        "Definitions 7.3/7.4 (re-scope composition)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Domain { r, sigma } = expr else {
            return None;
        };
        let Expr::Domain {
            r: inner,
            sigma: omega,
        } = r.as_ref()
        else {
            return None;
        };
        Some(Expr::Domain {
            r: inner.clone(),
            sigma: spec_compose(omega, sigma),
        })
    }
}

/// Fuse a pipeline of two literal-carrier applications into one:
/// `g[f[x]_σ]_ω → h[x]_τ` with `h_(τ) = g_(ω) ∘ f_(σ)` (Theorem 11.2).
pub struct CompositionFusion;

impl Rule for CompositionFusion {
    fn name(&self) -> &'static str {
        "composition-fusion"
    }
    fn law(&self) -> &'static str {
        "Definition 11.1 / Theorem 11.2"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        let Expr::Image {
            r: g_expr,
            a,
            scope: omega,
        } = expr
        else {
            return None;
        };
        let Expr::Literal(g_graph) = g_expr.as_ref() else {
            return None;
        };
        let Expr::Image {
            r: f_expr,
            a: x,
            scope: sigma,
        } = a.as_ref()
        else {
            return None;
        };
        let Expr::Literal(f_graph) = f_expr.as_ref() else {
            return None;
        };
        let f = Process::new(f_graph.clone(), sigma.clone());
        let g = Process::new(g_graph.clone(), omega.clone());
        let h = Process::compose(&g, &f).ok()?;
        Some(Expr::Image {
            r: Box::new(Expr::Literal(h.graph)),
            a: x.clone(),
            scope: h.scope,
        })
    }
}

/// Member-scan budget the analyzer gets inside the optimizer: rewriting
/// happens once per plan, so it is worth scanning far larger literals than
/// the per-evaluation gate does.
const PRUNE_SCAN_CAP: usize = 1 << 20;

/// Rewrite subplans the static analyzer proves empty to `∅`.
///
/// Goes beyond [`EmptyPrune`]'s syntactic checks: the analyzer propagates
/// scope signatures bottom-up, so e.g. an intersection of two non-empty
/// sets whose members provably carry disjoint scopes collapses — before
/// any kernel, pool, or WAL cost is paid. Tables are analyzed under an
/// *open* environment (the optimizer has no bindings), which abstracts
/// them to ⊤ — never `ProvablyEmpty` — so no table-dependent subplan is
/// ever pruned. Nodes carrying proven cross-collisions analyze to unknown
/// emptiness and are likewise left for the evaluator gate to report.
pub struct AnalyzerPrune;

impl Rule for AnalyzerPrune {
    fn name(&self) -> &'static str {
        "analyzer-empty-prune"
    }
    fn law(&self) -> &'static str {
        "static emptiness analysis (scope-signature disjointness)"
    }
    fn apply(&self, expr: &Expr) -> Option<Expr> {
        // Only node types with a *local* emptiness proof are worth the
        // analysis: disjoint signatures (intersect), an empty σ or input
        // (restrict/domain/image), an empty operand (cross, rel-product).
        // Union and difference are empty only when a child is, and the
        // rule visits children anyway — analyzing the parent too would
        // just re-scan the same subtrees without adding pruning power.
        // Leaves are already minimal (∅ literals included).
        if matches!(
            expr,
            Expr::Literal(_) | Expr::Table(_) | Expr::Union(_, _) | Expr::Difference(_, _)
        ) {
            return None;
        }
        let env = AnalysisEnv::open().with_scan_cap(PRUNE_SCAN_CAP);
        let analysis = analyze(expr, &env);
        (analysis.root.set.emptiness == Emptiness::ProvablyEmpty)
            .then(|| Expr::lit(ExtendedSet::empty()))
    }
}

/// The default rule set, in application order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(EmptyPrune),
        Box::new(BooleanIdempotence),
        Box::new(ImageFusion),
        Box::new(DomainFusion),
        Box::new(ImageUnionMerge),
        Box::new(InputUnionMerge),
        Box::new(CompositionFusion),
        Box::new(AnalyzerPrune),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::Bindings;
    use xst_core::ops::{rescope_by_scope, sigma_domain};
    use xst_core::{xset, xtuple};

    #[test]
    fn image_fusion_rewrites() {
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let rewritten = ImageFusion.apply(&e).unwrap();
        assert!(matches!(rewritten, Expr::Image { .. }));
    }

    #[test]
    fn spec_compose_law_holds() {
        // Re-scope by ω then σ equals re-scope by ω;σ — on a concrete set.
        let a = xset!["a" => 1, "b" => 2, "c" => 3];
        let omega = xset![1 => "p", 2 => "q", 3 => "p"];
        let sigma = xset!["p" => 10, "q" => 20];
        let two_steps = rescope_by_scope(&rescope_by_scope(&a, &omega), &sigma);
        let one_step = rescope_by_scope(&a, &spec_compose(&omega, &sigma));
        assert_eq!(two_steps, one_step);
    }

    #[test]
    fn domain_fusion_preserves_semantics() {
        let r = xset![xtuple!["a", "b", "c"].into_value()];
        let mut b = Bindings::new();
        b.insert("r".into(), r);
        let two = Expr::table("r").domain(xtuple![3, 1]).domain(xtuple![2]);
        let fused = DomainFusion.apply(&two).unwrap();
        assert_eq!(eval(&two, &b).unwrap(), eval(&fused, &b).unwrap());
        // Inner 𝔇_⟨3,1⟩ yields ⟨c,a⟩; outer 𝔇_⟨2⟩ picks a.
        assert_eq!(
            eval(&two, &b).unwrap(),
            sigma_domain(
                &sigma_domain(b.get("r").unwrap(), &xtuple![3, 1]),
                &xtuple![2]
            )
        );
    }

    #[test]
    fn empty_prune_cases() {
        let empty = Expr::lit(ExtendedSet::empty());
        let t = Expr::table("t");
        assert_eq!(
            EmptyPrune.apply(&t.clone().union(empty.clone())),
            Some(t.clone())
        );
        assert!(EmptyPrune
            .apply(&t.clone().intersect(empty.clone()))
            .unwrap()
            .is_empty_literal());
        assert_eq!(
            EmptyPrune.apply(&t.clone().difference(empty.clone())),
            Some(t.clone())
        );
        assert!(EmptyPrune
            .apply(&empty.clone().difference(t.clone()))
            .unwrap()
            .is_empty_literal());
        assert!(EmptyPrune
            .apply(&t.clone().restrict(ExtendedSet::empty(), Expr::table("a")))
            .unwrap()
            .is_empty_literal());
        assert!(EmptyPrune
            .apply(&t.clone().image(empty.clone(), Scope::pairs()))
            .unwrap()
            .is_empty_literal());
        assert_eq!(EmptyPrune.apply(&t), None);
    }

    #[test]
    fn idempotence_cases() {
        let t = Expr::table("t");
        assert_eq!(
            BooleanIdempotence.apply(&t.clone().union(t.clone())),
            Some(t.clone())
        );
        assert_eq!(
            BooleanIdempotence.apply(&t.clone().intersect(t.clone())),
            Some(t.clone())
        );
        assert!(BooleanIdempotence
            .apply(&t.clone().difference(t.clone()))
            .unwrap()
            .is_empty_literal());
        assert_eq!(
            BooleanIdempotence.apply(&t.clone().union(Expr::table("u"))),
            None
        );
    }

    #[test]
    fn union_merges_preserve_semantics() {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let g = xset![ExtendedSet::pair("a", "z").into_value()];
        let a = xset![xtuple!["a"].into_value()];
        let b2 = xset![xtuple!["b"].into_value()];
        let mut env = Bindings::new();
        env.insert("f".into(), f);
        env.insert("g".into(), g);
        env.insert("a".into(), a);
        env.insert("b".into(), b2);

        // C.1(i): same input, different relations.
        let e1 = Expr::table("f")
            .image(Expr::table("a"), Scope::pairs())
            .union(Expr::table("g").image(Expr::table("a"), Scope::pairs()));
        let m1 = ImageUnionMerge.apply(&e1).unwrap();
        assert_eq!(eval(&e1, &env).unwrap(), eval(&m1, &env).unwrap());

        // C.1(a): same relation, different inputs.
        let e2 = Expr::table("f")
            .image(Expr::table("a"), Scope::pairs())
            .union(Expr::table("f").image(Expr::table("b"), Scope::pairs()));
        let m2 = InputUnionMerge.apply(&e2).unwrap();
        assert_eq!(eval(&e2, &env).unwrap(), eval(&m2, &env).unwrap());

        // Mismatched scopes do not merge.
        let e3 = Expr::table("f")
            .image(Expr::table("a"), Scope::pairs())
            .union(Expr::table("f").image(Expr::table("a"), Scope::pairs_inverse()));
        assert_eq!(ImageUnionMerge.apply(&e3), None);
        assert_eq!(InputUnionMerge.apply(&e3), None);
    }

    #[test]
    fn composition_fusion_preserves_semantics() {
        let f = xset![
            ExtendedSet::pair("a", "b").into_value(),
            ExtendedSet::pair("c", "d").into_value()
        ];
        let g = xset![
            ExtendedSet::pair("b", "z").into_value(),
            ExtendedSet::pair("d", "w").into_value()
        ];
        let pipeline = Expr::lit(g).image(
            Expr::lit(f).image(Expr::table("x"), Scope::pairs()),
            Scope::pairs(),
        );
        let fused = CompositionFusion.apply(&pipeline).unwrap();
        // The fused plan has one Image node instead of two.
        assert_eq!(fused.size(), 3);
        assert_eq!(pipeline.size(), 5);
        for input in ["a", "c", "q"] {
            let mut env = Bindings::new();
            env.insert("x".into(), xset![xtuple![input].into_value()]);
            assert_eq!(
                eval(&pipeline, &env).unwrap(),
                eval(&fused, &env).unwrap(),
                "input {input}"
            );
        }
    }

    #[test]
    fn analyzer_prune_collapses_scope_disjoint_intersections() {
        // Both operands non-empty, but every member scope differs: no
        // syntactic rule sees this, the analyzer's signatures do.
        let e = Expr::lit(xset!["a" => 1, "b" => 1]).intersect(Expr::lit(xset!["a" => 2]));
        assert!(AnalyzerPrune.apply(&e).unwrap().is_empty_literal());
        assert_eq!(EmptyPrune.apply(&e), None);
    }

    #[test]
    fn analyzer_prune_leaves_tables_and_unknowns_alone() {
        let t = Expr::table("t").intersect(Expr::table("u"));
        assert_eq!(AnalyzerPrune.apply(&t), None);
        let overlapping =
            Expr::lit(xset!["a" => 1, "c" => 2]).intersect(Expr::lit(xset!["a" => 1]));
        assert_eq!(AnalyzerPrune.apply(&overlapping), None);
    }

    #[test]
    fn rules_report_laws() {
        for rule in default_rules() {
            assert!(!rule.name().is_empty());
            assert!(!rule.law().is_empty());
        }
    }
}
