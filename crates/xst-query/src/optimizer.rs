//! Fixpoint rule driver with an explain trace.
//!
//! The optimizer rewrites an expression bottom-up, trying every rule at
//! every node, and repeats until no rule fires (bounded by a pass limit).
//! Each firing is recorded in the [`Trace`], which doubles as the `EXPLAIN`
//! output: rule name, paper law, and the rewritten node.

use crate::expr::Expr;
use crate::rules::{default_rules, Rule};
use std::fmt;

/// One optimizer firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Which rule fired.
    pub rule: &'static str,
    /// The paper law justifying it.
    pub law: &'static str,
    /// Rendering of the node before the rewrite.
    pub before: String,
    /// Rendering of the node after the rewrite.
    pub after: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} ⇒ {}",
            self.rule, self.law, self.before, self.after
        )
    }
}

/// The full rewrite history of one optimization run.
pub type Trace = Vec<TraceEntry>;

/// A rule-driven expression optimizer.
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
    max_passes: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

impl Optimizer {
    /// Optimizer with the default rule set.
    pub fn new() -> Optimizer {
        Optimizer {
            rules: default_rules(),
            max_passes: 16,
        }
    }

    /// Optimizer with a custom rule set.
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Optimizer {
        Optimizer {
            rules,
            max_passes: 16,
        }
    }

    /// Optimize to fixpoint, returning the rewritten expression and trace.
    pub fn optimize(&self, expr: &Expr) -> (Expr, Trace) {
        let mut current = expr.clone();
        let mut trace = Trace::new();
        for _ in 0..self.max_passes {
            let (next, changed) = self.pass(&current, &mut trace);
            current = next;
            if !changed {
                break;
            }
        }
        (current, trace)
    }

    /// One bottom-up pass.
    fn pass(&self, expr: &Expr, trace: &mut Trace) -> (Expr, bool) {
        // Rewrite children first.
        let (node, mut changed) = self.map_children(expr, trace);
        // Then try rules at this node, repeatedly, until none fires.
        let mut node = node;
        loop {
            let mut fired = false;
            for rule in &self.rules {
                if let Some(next) = rule.apply(&node) {
                    trace.push(TraceEntry {
                        rule: rule.name(),
                        law: rule.law(),
                        before: node.to_string(),
                        after: next.to_string(),
                    });
                    node = next;
                    fired = true;
                    changed = true;
                }
            }
            if !fired {
                break;
            }
        }
        (node, changed)
    }

    fn map_children(&self, expr: &Expr, trace: &mut Trace) -> (Expr, bool) {
        macro_rules! go {
            ($e:expr) => {{
                let (child, ch) = self.pass($e, trace);
                (Box::new(child), ch)
            }};
        }
        match expr {
            Expr::Literal(_) | Expr::Table(_) => (expr.clone(), false),
            Expr::Union(a, b) => {
                let (a, ca) = go!(a);
                let (b, cb) = go!(b);
                (Expr::Union(a, b), ca || cb)
            }
            Expr::Intersect(a, b) => {
                let (a, ca) = go!(a);
                let (b, cb) = go!(b);
                (Expr::Intersect(a, b), ca || cb)
            }
            Expr::Difference(a, b) => {
                let (a, ca) = go!(a);
                let (b, cb) = go!(b);
                (Expr::Difference(a, b), ca || cb)
            }
            Expr::Cross(a, b) => {
                let (a, ca) = go!(a);
                let (b, cb) = go!(b);
                (Expr::Cross(a, b), ca || cb)
            }
            Expr::Restrict { r, sigma, a } => {
                let (r, cr) = go!(r);
                let (a, ca) = go!(a);
                (
                    Expr::Restrict {
                        r,
                        sigma: sigma.clone(),
                        a,
                    },
                    cr || ca,
                )
            }
            Expr::Domain { r, sigma } => {
                let (r, cr) = go!(r);
                (
                    Expr::Domain {
                        r,
                        sigma: sigma.clone(),
                    },
                    cr,
                )
            }
            Expr::Image { r, a, scope } => {
                let (r, cr) = go!(r);
                let (a, ca) = go!(a);
                (
                    Expr::Image {
                        r,
                        a,
                        scope: scope.clone(),
                    },
                    cr || ca,
                )
            }
            Expr::RelProduct { f, sigma, g, omega } => {
                let (f, cf) = go!(f);
                let (g, cg) = go!(g);
                (
                    Expr::RelProduct {
                        f,
                        sigma: sigma.clone(),
                        g,
                        omega: omega.clone(),
                    },
                    cf || cg,
                )
            }
        }
    }
}

impl Optimizer {
    /// Optimize under a cost guard: a full fixpoint rewrite is accepted
    /// only if it does not increase [`crate::cost::estimated_work`] under
    /// `stats`; otherwise the original expression is returned with an
    /// explanatory trace entry.
    ///
    /// With the default rule set every rewrite is work-reducing (see the
    /// `optimizer_never_increases_estimated_work` test in [`crate::cost`]),
    /// so the guard exists for custom rule sets — e.g. distribution rules
    /// that trade one big pass for several small ones.
    pub fn optimize_costed(
        &self,
        expr: &Expr,
        stats: &dyn crate::cost::StatsSource,
    ) -> (Expr, Trace) {
        let before = crate::cost::estimated_work(expr, stats);
        let (rewritten, mut trace) = self.optimize(expr);
        let after = crate::cost::estimated_work(&rewritten, stats);
        if after <= before {
            (rewritten, trace)
        } else {
            trace.push(TraceEntry {
                rule: "cost-guard",
                law: "estimated_work must not increase",
                before: format!("{rewritten} (est. {after:.0})"),
                after: format!("{expr} (est. {before:.0})"),
            });
            (expr.clone(), trace)
        }
    }
}

/// Render an `EXPLAIN`-style report: the final plan plus every firing.
pub fn explain(expr: &Expr) -> String {
    let optimizer = Optimizer::new();
    let (optimized, trace) = optimizer.optimize(expr);
    let mut out = String::new();
    out.push_str(&format!("plan: {optimized}\n"));
    if trace.is_empty() {
        out.push_str("rewrites: none\n");
    } else {
        out.push_str("rewrites:\n");
        for entry in &trace {
            out.push_str(&format!("  - {entry}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::Bindings;
    use xst_core::{xset, xtuple, ExtendedSet, Scope};

    fn env() -> Bindings {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        [("f".to_string(), f), ("a".to_string(), a)]
            .into_iter()
            .collect()
    }

    #[test]
    fn optimizes_two_pass_image_to_fused() {
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let (optimized, trace) = Optimizer::new().optimize(&e);
        assert!(matches!(optimized, Expr::Image { .. }));
        assert!(trace.iter().any(|t| t.rule == "image-fusion"));
        assert_eq!(eval(&e, &env()).unwrap(), eval(&optimized, &env()).unwrap());
    }

    #[test]
    fn optimizer_reaches_fixpoint_on_nested_rewrites() {
        // ((f |_σ a) domain) ∪ ∅  — needs empty-prune then image-fusion.
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2])
            .union(Expr::lit(ExtendedSet::empty()));
        let (optimized, trace) = Optimizer::new().optimize(&e);
        assert!(matches!(optimized, Expr::Image { .. }));
        assert!(trace.len() >= 2);
        assert_eq!(eval(&e, &env()).unwrap(), eval(&optimized, &env()).unwrap());
    }

    #[test]
    fn pipeline_collapses_through_composition() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("b", "c").into_value()];
        let h = xset![ExtendedSet::pair("c", "d").into_value()];
        // h[g[f[x]]] — three stages fuse to one.
        let e = Expr::lit(h).image(
            Expr::lit(g).image(
                Expr::lit(f).image(Expr::table("x"), Scope::pairs()),
                Scope::pairs(),
            ),
            Scope::pairs(),
        );
        let (optimized, trace) = Optimizer::new().optimize(&e);
        assert_eq!(optimized.size(), 3, "single image over x: {optimized}");
        assert!(
            trace
                .iter()
                .filter(|t| t.rule == "composition-fusion")
                .count()
                >= 2
        );
        let mut env = Bindings::new();
        env.insert("x".into(), xset![xtuple!["a"].into_value()]);
        assert_eq!(eval(&e, &env).unwrap(), eval(&optimized, &env).unwrap());
    }

    #[test]
    fn stable_expressions_are_untouched() {
        let e = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let (optimized, trace) = Optimizer::new().optimize(&e);
        assert_eq!(optimized, e);
        assert!(trace.is_empty());
    }

    #[test]
    fn explain_renders() {
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let report = explain(&e);
        assert!(report.contains("plan:"), "{report}");
        assert!(report.contains("image-fusion"), "{report}");
        assert!(report.contains("C.1(f)"), "{report}");
        let stable = explain(&Expr::table("f"));
        assert!(stable.contains("rewrites: none"), "{stable}");
    }

    #[test]
    fn costed_optimizer_accepts_reducing_rewrites() {
        use crate::cost::TableStats;
        let mut stats = TableStats::default();
        stats.set("f", 100);
        stats.set("a", 4);
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let (optimized, trace) = Optimizer::new().optimize_costed(&e, &stats);
        assert!(matches!(optimized, Expr::Image { .. }));
        assert!(!trace.iter().any(|t| t.rule == "cost-guard"));
    }

    #[test]
    fn costed_optimizer_rejects_work_increasing_rules() {
        use crate::cost::TableStats;
        use crate::rules::Rule;

        /// A deliberately bad rule: duplicates any table scan into a
        /// self-union (same result, double the estimated work).
        struct Duplicator;
        impl Rule for Duplicator {
            fn name(&self) -> &'static str {
                "duplicator"
            }
            fn law(&self) -> &'static str {
                "none — pessimization for testing"
            }
            fn apply(&self, expr: &Expr) -> Option<Expr> {
                // Fires only on table "f" and rewrites to tables it never
                // matches again, so the fixpoint loop terminates.
                match expr {
                    Expr::Table(t) if t == "f" => Some(Expr::table("g").union(Expr::table("g"))),
                    _ => None,
                }
            }
        }

        let mut stats = TableStats::default();
        stats.set("f", 100);
        stats.set("g", 100);
        let e = Expr::table("f").domain(xtuple![1]);
        let opt = Optimizer::with_rules(vec![Box::new(Duplicator)]);
        let (guarded, trace) = opt.optimize_costed(&e, &stats);
        assert_eq!(guarded, e, "pessimization rolled back");
        assert!(trace.iter().any(|t| t.rule == "cost-guard"));
    }

    #[test]
    fn custom_rule_sets() {
        let opt = Optimizer::with_rules(vec![]);
        let e = Expr::table("t").union(Expr::table("t"));
        let (optimized, trace) = opt.optimize(&e);
        assert_eq!(optimized, e, "no rules, no rewrites");
        assert!(trace.is_empty());
    }
}
