//! `EXPLAIN ANALYZE`: optimize, execute, and report where the time went.
//!
//! [`explain_analyze`] runs the optimizer (recording every rule firing),
//! then executes the rewritten plan through the same parallel kernels as
//! [`eval_parallel`](crate::eval::eval_parallel) while building a
//! [`PlanNode`] tree: one node per operator carrying its inclusive
//! wall-time and output cardinality. The rendered report is the shell's
//! `.explain` output — the optimizer trace shows *why* the plan looks the
//! way it does, the tree shows *what it cost* to run.
//!
//! The analyzed execution must be indistinguishable from the ordinary
//! evaluator on every input; `tests/observability.rs` drives both against
//! random expressions and asserts identical results.

use crate::expr::{Bindings, Expr};
use crate::optimizer::{Optimizer, Trace};
use std::fmt;
use std::time::Instant;
use xst_analyze::AnalyzedNode;
use xst_core::ops::{
    cross, difference, par_image, par_intersection, par_relative_product, par_sigma_restrict,
    par_union, sigma_domain, Parallelism,
};
use xst_core::{ExtendedSet, XstError, XstResult};
use xst_obs::span::fmt_ns;

/// One executed operator in an analyzed plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Operator label (`"image"`, `"table f"`, ...).
    pub op: String,
    /// Statically inferred scope signature (a superset of the scopes the
    /// node's members can carry; `⊤` when nothing is known).
    pub sig: String,
    /// Output cardinality.
    pub rows_out: u64,
    /// Inclusive wall-time (children included).
    pub total_ns: u64,
    /// Input subtrees, in operand order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Wall-time spent in this operator alone (children subtracted).
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(kids)
    }

    /// Input cardinality: the sum of the children's outputs.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Operator count in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    fn render_into(&self, prefix: &str, last: bool, top: bool, out: &mut String) {
        let (branch, next_prefix) = if top {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let timing = if self.children.is_empty() {
            fmt_ns(self.total_ns)
        } else {
            format!(
                "{} (self {})",
                fmt_ns(self.total_ns),
                fmt_ns(self.self_ns())
            )
        };
        out.push_str(&format!(
            "{branch}{}  sig={}  {timing}  rows={}\n",
            self.op, self.sig, self.rows_out
        ));
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(&next_prefix, i + 1 == self.children.len(), false, out);
        }
    }
}

/// The full product of one `EXPLAIN ANALYZE` run.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// The optimized plan that actually executed.
    pub plan: Expr,
    /// Every optimizer rule firing, in order.
    pub rewrites: Trace,
    /// Per-operator execution tree.
    pub root: PlanNode,
    /// The query result (identical to what `eval_parallel` returns).
    pub result: ExtendedSet,
    /// End-to-end execution wall-time (optimization excluded).
    pub total_ns: u64,
}

impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {}", self.plan)?;
        if self.rewrites.is_empty() {
            writeln!(f, "rewrites: none")?;
        } else {
            writeln!(f, "rewrites:")?;
            for entry in &self.rewrites {
                writeln!(f, "  - {entry}")?;
            }
        }
        writeln!(f, "operators:")?;
        let mut tree = String::new();
        self.root.render_into("  ", true, false, &mut tree);
        f.write_str(&tree)?;
        write!(
            f,
            "total: {}, {} result members",
            fmt_ns(self.total_ns),
            self.result.card()
        )
    }
}

/// Optimize `expr`, execute the rewritten plan, and report per-operator
/// wall-time and cardinalities alongside the optimizer trace.
pub fn explain_analyze(
    expr: &Expr,
    bindings: &Bindings,
    par: &Parallelism,
) -> XstResult<ExplainAnalyze> {
    crate::analysis::gate(expr, bindings)?;
    let mut span = xst_obs::span!("query.explain_analyze", threads = par.threads);
    let (plan, rewrites) = Optimizer::new().optimize(expr);
    // Analyze the optimized plan once; its node tree mirrors the plan's
    // shape, so the executor can zip the inferred signatures in.
    let analysis = crate::analysis::check(&plan, bindings);
    let started = Instant::now();
    let (result, root) = run(&plan, bindings, par, Some(&analysis.root))?;
    let total_ns = started.elapsed().as_nanos() as u64;
    if span.id().is_some() {
        span.attr("operators", root.size());
        span.attr("rows_out", result.card());
    }
    Ok(ExplainAnalyze {
        plan,
        rewrites,
        root,
        result,
        total_ns,
    })
}

/// Execute one node, timing it inclusively and collecting child nodes.
/// Mirrors `eval_with_stats` operator-for-operator — the kernels are the
/// same, only the bookkeeping differs.
fn run(
    expr: &Expr,
    bindings: &Bindings,
    par: &Parallelism,
    info: Option<&AnalyzedNode>,
) -> XstResult<(ExtendedSet, PlanNode)> {
    let child = |i: usize| info.and_then(|n| n.children.get(i));
    let started = Instant::now();
    let (op, result, children) = match expr {
        Expr::Literal(s) => ("literal".to_string(), s.clone(), Vec::new()),
        Expr::Table(name) => {
            let s = bindings
                .get(name)
                .cloned()
                .ok_or_else(|| XstError::NotComposable {
                    reason: format!("unbound table {name}"),
                })?;
            (format!("table {name}"), s, Vec::new())
        }
        Expr::Union(a, b) => {
            let (x, na) = run(a, bindings, par, child(0))?;
            let (y, nb) = run(b, bindings, par, child(1))?;
            ("union".to_string(), par_union(&x, &y, par), vec![na, nb])
        }
        Expr::Intersect(a, b) => {
            let (x, na) = run(a, bindings, par, child(0))?;
            let (y, nb) = run(b, bindings, par, child(1))?;
            (
                "intersect".to_string(),
                par_intersection(&x, &y, par),
                vec![na, nb],
            )
        }
        Expr::Difference(a, b) => {
            let (x, na) = run(a, bindings, par, child(0))?;
            let (y, nb) = run(b, bindings, par, child(1))?;
            ("difference".to_string(), difference(&x, &y), vec![na, nb])
        }
        Expr::Restrict { r, sigma, a } => {
            let (rs, nr) = run(r, bindings, par, child(0))?;
            let (av, na) = run(a, bindings, par, child(1))?;
            (
                "restrict".to_string(),
                par_sigma_restrict(&rs, sigma, &av, par),
                vec![nr, na],
            )
        }
        Expr::Domain { r, sigma } => {
            let (rs, nr) = run(r, bindings, par, child(0))?;
            ("domain".to_string(), sigma_domain(&rs, sigma), vec![nr])
        }
        Expr::Image { r, a, scope } => {
            let (rs, nr) = run(r, bindings, par, child(0))?;
            let (av, na) = run(a, bindings, par, child(1))?;
            (
                "image".to_string(),
                par_image(&rs, &av, scope, par),
                vec![nr, na],
            )
        }
        Expr::RelProduct { f, sigma, g, omega } => {
            let (fs, nf) = run(f, bindings, par, child(0))?;
            let (gs, ng) = run(g, bindings, par, child(1))?;
            (
                "rel_product".to_string(),
                par_relative_product(&fs, sigma, &gs, omega, par),
                vec![nf, ng],
            )
        }
        Expr::Cross(a, b) => {
            let (x, na) = run(a, bindings, par, child(0))?;
            let (y, nb) = run(b, bindings, par, child(1))?;
            ("cross".to_string(), cross(&x, &y)?, vec![na, nb])
        }
    };
    let node = PlanNode {
        op,
        sig: info.map(|n| n.set.sig.to_string()).unwrap_or_default(),
        rows_out: result.card() as u64,
        total_ns: started.elapsed().as_nanos() as u64,
        children,
    };
    Ok((result, node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_parallel;
    use xst_core::{xset, xtuple, Scope};

    fn env() -> Bindings {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            ExtendedSet::pair("c", "x").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        [("f".to_string(), f), ("a".to_string(), a)]
            .into_iter()
            .collect()
    }

    #[test]
    fn analyzed_execution_matches_eval() {
        let env = env();
        let e = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let par = Parallelism::sequential();
        let (expect, _) = eval_parallel(&e, &env, &par).unwrap();
        let report = explain_analyze(&e, &env, &par).unwrap();
        assert_eq!(report.result, expect);
        // The two-pass expression fuses to a single image operator.
        assert!(matches!(report.plan, Expr::Image { .. }));
        assert!(report.rewrites.iter().any(|t| t.rule == "image-fusion"));
        assert_eq!(report.root.op, "image");
        assert_eq!(report.root.rows_out, 1);
        assert_eq!(report.root.children.len(), 2);
        assert_eq!(report.root.rows_in(), 4, "table f (3) + table a (1)");
    }

    #[test]
    fn report_renders_tree_times_and_cardinalities() {
        let env = env();
        let e = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let report = explain_analyze(&e, &env, &Parallelism::sequential()).unwrap();
        let text = report.to_string();
        assert!(text.contains("plan:"), "{text}");
        assert!(text.contains("rewrites: none"), "{text}");
        assert!(text.contains("image"), "{text}");
        assert!(text.contains("└─ table a"), "{text}");
        assert!(text.contains("rows=1"), "{text}");
        assert!(text.contains("self"), "{text}");
        assert!(text.contains("result members"), "{text}");
    }

    #[test]
    fn self_time_subtracts_children() {
        let node = PlanNode {
            op: "union".into(),
            sig: "⊤".into(),
            rows_out: 10,
            total_ns: 1_000,
            children: vec![
                PlanNode {
                    op: "table x".into(),
                    sig: "⊤".into(),
                    rows_out: 6,
                    total_ns: 300,
                    children: Vec::new(),
                },
                PlanNode {
                    op: "table y".into(),
                    sig: "⊤".into(),
                    rows_out: 4,
                    total_ns: 200,
                    children: Vec::new(),
                },
            ],
        };
        assert_eq!(node.self_ns(), 500);
        assert_eq!(node.rows_in(), 10);
        assert_eq!(node.size(), 3);
    }

    #[test]
    fn unbound_tables_error_like_eval() {
        let e = Expr::table("missing").domain(xtuple![1]);
        assert!(explain_analyze(&e, &Bindings::new(), &Parallelism::sequential()).is_err());
    }
}
