//! Expression evaluation with operator statistics.

use crate::expr::{Bindings, Expr};
use std::fmt;
use xst_core::ops::{
    cross, difference, image, intersection, relative_product, sigma_domain, sigma_restrict,
    union,
};
use xst_core::{ExtendedSet, XstError, XstResult};

/// Counters the evaluator accumulates; experiment E2 reads
/// `intermediate_members` to show what fusion saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Operator nodes executed.
    pub nodes: u64,
    /// Total members across all intermediate (non-root) results — the
    /// materialization volume a pipeline pays.
    pub intermediate_members: u64,
    /// Members in the final result.
    pub result_members: u64,
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} intermediate members, {} result members",
            self.nodes, self.intermediate_members, self.result_members
        )
    }
}

/// Evaluate `expr` against `bindings`.
pub fn eval(expr: &Expr, bindings: &Bindings) -> XstResult<ExtendedSet> {
    let mut stats = EvalStats::default();
    eval_with_stats(expr, bindings, &mut stats)
}

/// Evaluate and report statistics.
pub fn eval_counted(expr: &Expr, bindings: &Bindings) -> XstResult<(ExtendedSet, EvalStats)> {
    let mut stats = EvalStats::default();
    let result = eval_with_stats(expr, bindings, &mut stats)?;
    // The root was counted as intermediate inside the recursion; correct it.
    stats.intermediate_members -= result.card() as u64;
    stats.result_members = result.card() as u64;
    Ok((result, stats))
}

fn eval_with_stats(
    expr: &Expr,
    bindings: &Bindings,
    stats: &mut EvalStats,
) -> XstResult<ExtendedSet> {
    let result = match expr {
        Expr::Literal(s) => s.clone(),
        Expr::Table(name) => bindings
            .get(name)
            .cloned()
            .ok_or_else(|| XstError::NotComposable {
                reason: format!("unbound table {name}"),
            })?,
        Expr::Union(a, b) => union(
            &eval_with_stats(a, bindings, stats)?,
            &eval_with_stats(b, bindings, stats)?,
        ),
        Expr::Intersect(a, b) => intersection(
            &eval_with_stats(a, bindings, stats)?,
            &eval_with_stats(b, bindings, stats)?,
        ),
        Expr::Difference(a, b) => difference(
            &eval_with_stats(a, bindings, stats)?,
            &eval_with_stats(b, bindings, stats)?,
        ),
        Expr::Restrict { r, sigma, a } => sigma_restrict(
            &eval_with_stats(r, bindings, stats)?,
            sigma,
            &eval_with_stats(a, bindings, stats)?,
        ),
        Expr::Domain { r, sigma } => {
            sigma_domain(&eval_with_stats(r, bindings, stats)?, sigma)
        }
        Expr::Image { r, a, scope } => image(
            &eval_with_stats(r, bindings, stats)?,
            &eval_with_stats(a, bindings, stats)?,
            scope,
        ),
        Expr::RelProduct { f, sigma, g, omega } => relative_product(
            &eval_with_stats(f, bindings, stats)?,
            sigma,
            &eval_with_stats(g, bindings, stats)?,
            omega,
        ),
        Expr::Cross(a, b) => cross(
            &eval_with_stats(a, bindings, stats)?,
            &eval_with_stats(b, bindings, stats)?,
        )?,
    };
    stats.nodes += 1;
    // Leaves are inputs, not materialized intermediates.
    if !matches!(expr, Expr::Literal(_) | Expr::Table(_)) {
        stats.intermediate_members += result.card() as u64;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::{xset, xtuple, Scope, Value};

    fn env() -> Bindings {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            ExtendedSet::pair("c", "x").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        [("f".to_string(), f), ("a".to_string(), a)]
            .into_iter()
            .collect()
    }

    #[test]
    fn evaluates_image() {
        let e = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let got = eval(&e, &env()).unwrap();
        assert_eq!(
            got,
            xset![xtuple!["x"].into_value() => Value::empty_set()]
        );
    }

    #[test]
    fn restrict_then_domain_equals_image() {
        let env = env();
        let two_pass = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let fused = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        assert_eq!(eval(&two_pass, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn stats_show_materialization_difference() {
        let env = env();
        let two_pass = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let fused = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let (_, s2) = eval_counted(&two_pass, &env).unwrap();
        let (_, s1) = eval_counted(&fused, &env).unwrap();
        assert!(s2.nodes > s1.nodes);
        assert!(
            s2.intermediate_members > s1.intermediate_members,
            "two-pass materializes the restriction: {s2} vs {s1}"
        );
        assert_eq!(s1.intermediate_members, 0);
        assert_eq!(s1.result_members, 1);
    }

    #[test]
    fn boolean_ops_evaluate() {
        let mut b = Bindings::new();
        b.insert("x".into(), xset![1, 2, 3]);
        b.insert("y".into(), xset![2, 3, 4]);
        let u = eval(&Expr::table("x").union(Expr::table("y")), &b).unwrap();
        assert_eq!(u.card(), 4);
        let i = eval(&Expr::table("x").intersect(Expr::table("y")), &b).unwrap();
        assert_eq!(i, xset![2, 3]);
        let d = eval(&Expr::table("x").difference(Expr::table("y")), &b).unwrap();
        assert_eq!(d, xset![1]);
    }

    #[test]
    fn cross_evaluates_and_propagates_errors() {
        let mut b = Bindings::new();
        b.insert("t".into(), xset![xtuple!["a"].into_value()]);
        // Non-tuple members whose scopes collide (both use scope 0).
        b.insert("bad".into(), xset![xset!["p" => 0].into_value()]);
        b.insert("bad2".into(), xset![xset!["q" => 0].into_value()]);
        let ok = eval(&Expr::table("t").cross(Expr::table("t")), &b).unwrap();
        assert_eq!(ok.card(), 1);
        assert!(eval(&Expr::table("bad").cross(Expr::table("bad2")), &b).is_err());
    }

    #[test]
    fn unbound_table_errors() {
        assert!(eval(&Expr::table("nope"), &Bindings::new()).is_err());
    }

    #[test]
    fn rel_product_evaluates() {
        let mut b = Bindings::new();
        b.insert(
            "f".into(),
            xset![ExtendedSet::pair("a", "k").into_value()],
        );
        b.insert(
            "g".into(),
            xset![ExtendedSet::pair("k", "z").into_value()],
        );
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let e = Expr::table("f").rel_product(sigma, Expr::table("g"), omega);
        let got = eval(&e, &b).unwrap();
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "z").into_value() => Value::empty_set()]
        );
    }
}
