//! Expression evaluation with operator statistics.

use crate::expr::{Bindings, Expr};
use std::fmt;
use std::time::Instant;
use xst_core::ops::{
    cross, difference, par_image, par_intersection, par_relative_product, par_sigma_restrict,
    par_union, sigma_domain, Parallelism,
};
use xst_core::{ExtendedSet, XstError, XstResult};

/// Operator families the evaluator accounts separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `A ∪ B`
    Union,
    /// `A ∩ B`
    Intersect,
    /// `A ~ B`
    Difference,
    /// `R |_σ A`
    Restrict,
    /// `𝔇_σ(R)`
    Domain,
    /// `R[A]_σ`
    Image,
    /// `F /ω_σ G`
    RelProduct,
    /// `A ⊗ B`
    Cross,
}

/// Number of [`OpKind`] variants (length of [`EvalStats::per_op`]).
pub const OP_KINDS: usize = 8;

impl OpKind {
    /// All kinds, in `per_op` index order.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::Union,
        OpKind::Intersect,
        OpKind::Difference,
        OpKind::Restrict,
        OpKind::Domain,
        OpKind::Image,
        OpKind::RelProduct,
        OpKind::Cross,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Union => "union",
            OpKind::Intersect => "intersect",
            OpKind::Difference => "difference",
            OpKind::Restrict => "restrict",
            OpKind::Domain => "domain",
            OpKind::Image => "image",
            OpKind::RelProduct => "rel_product",
            OpKind::Cross => "cross",
        }
    }

    /// Trace-span name for this family's evaluator site.
    pub fn span_name(self) -> &'static str {
        match self {
            OpKind::Union => "eval.union",
            OpKind::Intersect => "eval.intersect",
            OpKind::Difference => "eval.difference",
            OpKind::Restrict => "eval.restrict",
            OpKind::Domain => "eval.domain",
            OpKind::Image => "eval.image",
            OpKind::RelProduct => "eval.rel_product",
            OpKind::Cross => "eval.cross",
        }
    }
}

/// Accumulated execution profile of one operator family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Times an operator of this family ran.
    pub invocations: u64,
    /// Wall-clock spent inside the kernel (children excluded).
    pub wall_nanos: u64,
    /// Largest worker-thread count any invocation fanned out to (1 =
    /// always sequential).
    pub max_threads: u32,
}

/// Counters the evaluator accumulates; experiment E2 reads
/// `intermediate_members` to show what fusion saves, and E10 reads
/// `per_op` wall-times to show what the parallel kernels save.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Operator nodes executed.
    pub nodes: u64,
    /// Total members across all intermediate (non-root) results — the
    /// materialization volume a pipeline pays.
    pub intermediate_members: u64,
    /// Members in the final result.
    pub result_members: u64,
    /// Per-family profile, indexed by `OpKind as usize`.
    pub per_op: [OpStat; OP_KINDS],
}

impl EvalStats {
    /// Profile of one operator family.
    pub fn op(&self, kind: OpKind) -> OpStat {
        self.per_op[kind as usize]
    }

    /// Families that actually ran, with their profiles.
    pub fn ops_run(&self) -> impl Iterator<Item = (OpKind, OpStat)> + '_ {
        OpKind::ALL
            .into_iter()
            .map(|k| (k, self.op(k)))
            .filter(|(_, s)| s.invocations > 0)
    }

    /// Total kernel wall-clock across all families, in nanoseconds.
    pub fn total_wall_nanos(&self) -> u64 {
        self.per_op.iter().map(|s| s.wall_nanos).sum()
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} intermediate members, {} result members",
            self.nodes, self.intermediate_members, self.result_members
        )
    }
}

/// Evaluate `expr` against `bindings`.
///
/// Evaluation is gated on static analysis: plans that provably cannot
/// evaluate (unbound tables, proven `⊗` collisions) are rejected with a
/// structured [`XstError::Analysis`] before any kernel runs.
pub fn eval(expr: &Expr, bindings: &Bindings) -> XstResult<ExtendedSet> {
    crate::analysis::gate(expr, bindings)?;
    let mut stats = EvalStats::default();
    eval_with_stats(expr, bindings, &mut stats, &Parallelism::sequential())
}

/// Evaluate and report statistics.
pub fn eval_counted(expr: &Expr, bindings: &Bindings) -> XstResult<(ExtendedSet, EvalStats)> {
    eval_parallel(expr, bindings, &Parallelism::sequential())
}

/// Evaluate with operators routed through the parallel kernels: each
/// eligible operator fans out to `par.threads` workers when its dominant
/// operand cardinality clears `par.threshold`. The result is identical to
/// sequential evaluation on every input; `stats.per_op` records where the
/// time went and how wide each family ran.
pub fn eval_parallel(
    expr: &Expr,
    bindings: &Bindings,
    par: &Parallelism,
) -> XstResult<(ExtendedSet, EvalStats)> {
    crate::analysis::gate(expr, bindings)?;
    eval_parallel_unchecked(expr, bindings, par)
}

/// [`eval_parallel`] without the static-analysis gate.
///
/// The semantics are identical for every plan the gate admits; plans the
/// gate rejects fail here too, just at the offending operator instead of
/// up front. Exists so the analysis overhead itself can be measured
/// (experiment E15).
pub fn eval_parallel_unchecked(
    expr: &Expr,
    bindings: &Bindings,
    par: &Parallelism,
) -> XstResult<(ExtendedSet, EvalStats)> {
    let mut span = xst_obs::span!("query.eval", threads = par.threads);
    let mut stats = EvalStats::default();
    let result = eval_with_stats(expr, bindings, &mut stats, par)?;
    if span.id().is_some() {
        span.attr("nodes", stats.nodes);
        span.attr("rows_out", result.card());
    }
    xst_obs::cost::add_eval(stats.nodes, result.card() as u64);
    // A non-leaf root was counted as intermediate inside the recursion;
    // correct it (leaf roots were never counted).
    if !matches!(expr, Expr::Literal(_) | Expr::Table(_)) {
        stats.intermediate_members -= result.card() as u64;
    }
    stats.result_members = result.card() as u64;
    Ok((result, stats))
}

/// Run one kernel under the clock, crediting `kind`'s profile. `card` is
/// the dominant-operand cardinality that decides the fan-out width.
pub(crate) fn timed<F: FnOnce() -> ExtendedSet>(
    stats: &mut EvalStats,
    kind: OpKind,
    par: &Parallelism,
    card: usize,
    run: F,
) -> ExtendedSet {
    let mut span = xst_obs::SpanGuard::new(kind.span_name());
    let started = Instant::now();
    let out = run();
    if span.id().is_some() {
        span.attr("card_in", card);
        span.attr("rows_out", out.card());
    }
    drop(span);
    let slot = &mut stats.per_op[kind as usize];
    slot.invocations += 1;
    slot.wall_nanos += started.elapsed().as_nanos() as u64;
    let width = if par.should_parallelize(card) {
        par.threads as u32
    } else {
        1
    };
    slot.max_threads = slot.max_threads.max(width);
    out
}

fn eval_with_stats(
    expr: &Expr,
    bindings: &Bindings,
    stats: &mut EvalStats,
    par: &Parallelism,
) -> XstResult<ExtendedSet> {
    let result = match expr {
        Expr::Literal(s) => s.clone(),
        Expr::Table(name) => {
            bindings
                .get(name)
                .cloned()
                .ok_or_else(|| XstError::NotComposable {
                    reason: format!("unbound table {name}"),
                })?
        }
        Expr::Union(a, b) => {
            let x = eval_with_stats(a, bindings, stats, par)?;
            let y = eval_with_stats(b, bindings, stats, par)?;
            let card = x.card() + y.card();
            timed(stats, OpKind::Union, par, card, || par_union(&x, &y, par))
        }
        Expr::Intersect(a, b) => {
            let x = eval_with_stats(a, bindings, stats, par)?;
            let y = eval_with_stats(b, bindings, stats, par)?;
            let card = x.card() + y.card();
            timed(stats, OpKind::Intersect, par, card, || {
                par_intersection(&x, &y, par)
            })
        }
        Expr::Difference(a, b) => {
            let x = eval_with_stats(a, bindings, stats, par)?;
            let y = eval_with_stats(b, bindings, stats, par)?;
            // No parallel difference kernel: always sequential.
            timed(
                stats,
                OpKind::Difference,
                &Parallelism::sequential(),
                0,
                || difference(&x, &y),
            )
        }
        Expr::Restrict { r, sigma, a } => {
            let rs = eval_with_stats(r, bindings, stats, par)?;
            let av = eval_with_stats(a, bindings, stats, par)?;
            let card = rs.card();
            timed(stats, OpKind::Restrict, par, card, || {
                par_sigma_restrict(&rs, sigma, &av, par)
            })
        }
        Expr::Domain { r, sigma } => {
            let rs = eval_with_stats(r, bindings, stats, par)?;
            timed(stats, OpKind::Domain, &Parallelism::sequential(), 0, || {
                sigma_domain(&rs, sigma)
            })
        }
        Expr::Image { r, a, scope } => {
            let rs = eval_with_stats(r, bindings, stats, par)?;
            let av = eval_with_stats(a, bindings, stats, par)?;
            let card = rs.card();
            timed(stats, OpKind::Image, par, card, || {
                par_image(&rs, &av, scope, par)
            })
        }
        Expr::RelProduct { f, sigma, g, omega } => {
            let fs = eval_with_stats(f, bindings, stats, par)?;
            let gs = eval_with_stats(g, bindings, stats, par)?;
            let card = fs.card();
            timed(stats, OpKind::RelProduct, par, card, || {
                par_relative_product(&fs, sigma, &gs, omega, par)
            })
        }
        Expr::Cross(a, b) => {
            let x = eval_with_stats(a, bindings, stats, par)?;
            let y = eval_with_stats(b, bindings, stats, par)?;
            let mut span = xst_obs::SpanGuard::new(OpKind::Cross.span_name());
            let started = Instant::now();
            let out = cross(&x, &y)?;
            if span.id().is_some() {
                span.attr("card_in", x.card() + y.card());
                span.attr("rows_out", out.card());
            }
            drop(span);
            let slot = &mut stats.per_op[OpKind::Cross as usize];
            slot.invocations += 1;
            slot.wall_nanos += started.elapsed().as_nanos() as u64;
            slot.max_threads = slot.max_threads.max(1);
            out
        }
    };
    stats.nodes += 1;
    // Leaves are inputs, not materialized intermediates.
    if !matches!(expr, Expr::Literal(_) | Expr::Table(_)) {
        stats.intermediate_members += result.card() as u64;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::{xset, xtuple, Scope, Value};

    fn env() -> Bindings {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            ExtendedSet::pair("c", "x").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        [("f".to_string(), f), ("a".to_string(), a)]
            .into_iter()
            .collect()
    }

    #[test]
    fn evaluates_image() {
        let e = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let got = eval(&e, &env()).unwrap();
        assert_eq!(got, xset![xtuple!["x"].into_value() => Value::empty_set()]);
    }

    #[test]
    fn restrict_then_domain_equals_image() {
        let env = env();
        let two_pass = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let fused = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        assert_eq!(eval(&two_pass, &env).unwrap(), eval(&fused, &env).unwrap());
    }

    #[test]
    fn stats_show_materialization_difference() {
        let env = env();
        let two_pass = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let fused = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let (_, s2) = eval_counted(&two_pass, &env).unwrap();
        let (_, s1) = eval_counted(&fused, &env).unwrap();
        assert!(s2.nodes > s1.nodes);
        assert!(
            s2.intermediate_members > s1.intermediate_members,
            "two-pass materializes the restriction: {s2} vs {s1}"
        );
        assert_eq!(s1.intermediate_members, 0);
        assert_eq!(s1.result_members, 1);
    }

    #[test]
    fn per_op_stats_attribute_kernel_runs() {
        let env = env();
        let two_pass = Expr::table("f")
            .restrict(xtuple![1], Expr::table("a"))
            .domain(xtuple![2]);
        let (_, stats) = eval_counted(&two_pass, &env).unwrap();
        assert_eq!(stats.op(OpKind::Restrict).invocations, 1);
        assert_eq!(stats.op(OpKind::Domain).invocations, 1);
        assert_eq!(stats.op(OpKind::Image).invocations, 0);
        assert_eq!(stats.op(OpKind::Restrict).max_threads, 1);
        let run: Vec<_> = stats.ops_run().map(|(k, _)| k).collect();
        assert_eq!(run, vec![OpKind::Restrict, OpKind::Domain]);
    }

    #[test]
    fn eval_parallel_agrees_and_records_width() {
        let env = env();
        let e = Expr::table("f").image(Expr::table("a"), Scope::pairs());
        let par = Parallelism::new(4).with_threshold(1);
        let (seq, _) = eval_counted(&e, &env).unwrap();
        let (parallel, stats) = eval_parallel(&e, &env, &par).unwrap();
        assert_eq!(seq, parallel);
        assert_eq!(stats.op(OpKind::Image).max_threads, 4);
        assert!(stats.total_wall_nanos() > 0);
    }

    #[test]
    fn boolean_ops_evaluate() {
        let mut b = Bindings::new();
        b.insert("x".into(), xset![1, 2, 3]);
        b.insert("y".into(), xset![2, 3, 4]);
        let u = eval(&Expr::table("x").union(Expr::table("y")), &b).unwrap();
        assert_eq!(u.card(), 4);
        let i = eval(&Expr::table("x").intersect(Expr::table("y")), &b).unwrap();
        assert_eq!(i, xset![2, 3]);
        let d = eval(&Expr::table("x").difference(Expr::table("y")), &b).unwrap();
        assert_eq!(d, xset![1]);
    }

    #[test]
    fn cross_evaluates_and_propagates_errors() {
        let mut b = Bindings::new();
        b.insert("t".into(), xset![xtuple!["a"].into_value()]);
        // Non-tuple members whose scopes collide (both use scope 0).
        b.insert("bad".into(), xset![xset!["p" => 0].into_value()]);
        b.insert("bad2".into(), xset![xset!["q" => 0].into_value()]);
        let ok = eval(&Expr::table("t").cross(Expr::table("t")), &b).unwrap();
        assert_eq!(ok.card(), 1);
        assert!(eval(&Expr::table("bad").cross(Expr::table("bad2")), &b).is_err());
    }

    #[test]
    fn unbound_table_errors() {
        assert!(eval(&Expr::table("nope"), &Bindings::new()).is_err());
    }

    #[test]
    fn rel_product_evaluates() {
        let mut b = Bindings::new();
        b.insert("f".into(), xset![ExtendedSet::pair("a", "k").into_value()]);
        b.insert("g".into(), xset![ExtendedSet::pair("k", "z").into_value()]);
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let e = Expr::table("f").rel_product(sigma, Expr::table("g"), omega);
        let got = eval(&e, &b).unwrap();
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "z").into_value() => Value::empty_set()]
        );
    }
}
