//! Cardinality estimation for logical expressions.
//!
//! The estimator answers "roughly how many members will this node
//! produce?" from the base-table cardinalities in a [`StatsSource`],
//! using the classical independence heuristics. It exists so plan choices
//! (e.g. which side of a relative product to build) and regression checks
//! ("did the optimizer reduce the estimated work?") have something
//! deterministic to hold on to — and its assumptions are validated against
//! true cardinalities in the tests.

use crate::expr::{Bindings, Expr};
use std::collections::BTreeMap;

/// Where base-table cardinalities come from.
pub trait StatsSource {
    /// Member count of a named table, if known.
    fn table_card(&self, name: &str) -> Option<usize>;
}

/// Statistics captured from a set of bindings.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    cards: BTreeMap<String, usize>,
}

impl TableStats {
    /// Capture cardinalities from materialized bindings.
    pub fn from_bindings(bindings: &Bindings) -> TableStats {
        TableStats {
            cards: bindings
                .iter()
                .map(|(name, set)| (name.clone(), set.card()))
                .collect(),
        }
    }

    /// Manually register a table's cardinality.
    pub fn set(&mut self, name: impl Into<String>, card: usize) {
        self.cards.insert(name.into(), card);
    }
}

impl StatsSource for TableStats {
    fn table_card(&self, name: &str) -> Option<usize> {
        self.cards.get(name).copied()
    }
}

/// Default selectivity of a restriction/image predicate.
pub const DEFAULT_SELECTIVITY: f64 = 0.25;

/// Estimated output cardinality of `expr`. Unknown tables estimate as 0.
pub fn estimate(expr: &Expr, stats: &dyn StatsSource) -> f64 {
    match expr {
        Expr::Literal(s) => s.card() as f64,
        Expr::Table(name) => stats.table_card(name).unwrap_or(0) as f64,
        Expr::Union(a, b) => estimate(a, stats) + estimate(b, stats),
        Expr::Intersect(a, b) => estimate(a, stats).min(estimate(b, stats)),
        Expr::Difference(a, _) => estimate(a, stats),
        Expr::Restrict { r, .. } => estimate(r, stats) * DEFAULT_SELECTIVITY,
        Expr::Domain { r, .. } => estimate(r, stats),
        Expr::Image { r, .. } => estimate(r, stats) * DEFAULT_SELECTIVITY,
        Expr::RelProduct { f, g, .. } => {
            // Equijoin heuristic: |F|·|G| / max(|F|, |G|) = min(|F|, |G|)
            // scaled by nothing further — the key side is assumed unique.
            estimate(f, stats).min(estimate(g, stats))
        }
        Expr::Cross(a, b) => estimate(a, stats) * estimate(b, stats),
    }
}

/// Estimated total work: the sum of estimated cardinalities over every
/// operator node (leaves are free). This is the quantity optimizer
/// rewrites should not increase.
pub fn estimated_work(expr: &Expr, stats: &dyn StatsSource) -> f64 {
    let own = match expr {
        Expr::Literal(_) | Expr::Table(_) => 0.0,
        _ => estimate(expr, stats),
    };
    own + children(expr)
        .into_iter()
        .map(|c| estimated_work(c, stats))
        .sum::<f64>()
}

fn children(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Literal(_) | Expr::Table(_) => vec![],
        Expr::Union(a, b) | Expr::Intersect(a, b) | Expr::Difference(a, b) | Expr::Cross(a, b) => {
            vec![a, b]
        }
        Expr::Restrict { r, a, .. } => vec![r, a],
        Expr::Domain { r, .. } => vec![r],
        Expr::Image { r, a, .. } => vec![r, a],
        Expr::RelProduct { f, g, .. } => vec![f, g],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::optimizer::Optimizer;
    use xst_core::{xtuple, ExtendedSet, Scope, Value};

    fn stats() -> TableStats {
        let mut s = TableStats::default();
        s.set("big", 1000);
        s.set("small", 10);
        s
    }

    #[test]
    fn base_cases() {
        let s = stats();
        assert_eq!(estimate(&Expr::table("big"), &s), 1000.0);
        assert_eq!(estimate(&Expr::table("unknown"), &s), 0.0);
        assert_eq!(
            estimate(&Expr::lit(ExtendedSet::classical([Value::Int(1)])), &s),
            1.0
        );
    }

    #[test]
    fn combinators() {
        let s = stats();
        let b = || Expr::table("big");
        let sm = || Expr::table("small");
        assert_eq!(estimate(&b().union(sm()), &s), 1010.0);
        assert_eq!(estimate(&b().intersect(sm()), &s), 10.0);
        assert_eq!(estimate(&b().difference(sm()), &s), 1000.0);
        assert_eq!(estimate(&b().cross(sm()), &s), 10_000.0);
        assert_eq!(
            estimate(&b().image(sm(), Scope::pairs()), &s),
            1000.0 * DEFAULT_SELECTIVITY
        );
        assert_eq!(
            estimate(&b().rel_product(Scope::pairs(), sm(), Scope::pairs()), &s),
            10.0
        );
    }

    #[test]
    fn work_counts_every_operator() {
        let s = stats();
        let e = Expr::table("big")
            .restrict(xtuple![1], Expr::table("small"))
            .domain(xtuple![2]);
        // restrict: 250, domain over it: 250 → 500 total.
        assert_eq!(estimated_work(&e, &s), 500.0);
        // The fused image does the same in one node: 250.
        let fused = Expr::table("big").image(Expr::table("small"), Scope::pairs());
        assert_eq!(estimated_work(&fused, &s), 250.0);
    }

    #[test]
    fn optimizer_never_increases_estimated_work() {
        let s = stats();
        let exprs = [
            Expr::table("big")
                .restrict(xtuple![1], Expr::table("small"))
                .domain(xtuple![2]),
            Expr::table("big").union(Expr::lit(ExtendedSet::empty())),
            Expr::table("big").union(Expr::table("big")),
            Expr::table("big")
                .image(Expr::table("small"), Scope::pairs())
                .union(Expr::table("big").image(Expr::table("small"), Scope::pairs())),
        ];
        let opt = Optimizer::new();
        for e in exprs {
            let before = estimated_work(&e, &s);
            let (rewritten, _) = opt.optimize(&e);
            let after = estimated_work(&rewritten, &s);
            assert!(after <= before, "{e} : {before} -> {rewritten} : {after}");
        }
    }

    #[test]
    fn estimates_track_reality_within_reason() {
        // Compare the estimate to the true cardinality on a concrete join.
        let f: ExtendedSet = ExtendedSet::classical(
            (0..100).map(|i| Value::Set(ExtendedSet::pair(Value::Int(i), Value::Int(i % 10)))),
        );
        let g: ExtendedSet = ExtendedSet::classical(
            (0..10).map(|i| Value::Set(ExtendedSet::pair(Value::Int(i), Value::Int(i * 100)))),
        );
        let mut env = Bindings::new();
        env.insert("f".into(), f);
        env.insert("g".into(), g);
        let stats = TableStats::from_bindings(&env);
        let sigma = Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(1))]),
        );
        let omega = Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(2))]),
        );
        let e = Expr::table("f").rel_product(sigma, Expr::table("g"), omega);
        let estimated = estimate(&e, &stats);
        let actual = eval(&e, &env).unwrap().card() as f64;
        // Every f row joins exactly one g row: actual = 100, estimate = 10.
        // Within one order of magnitude is all the heuristic promises.
        assert!(actual / estimated <= 10.0 && estimated / actual <= 10.0);
    }
}
