//! # xst-query — algebraic expressions and a law-driven optimizer
//!
//! Query processing over the XST algebra:
//!
//! * [`expr`] — logical expression trees over named tables and literals;
//! * [`analysis`] — the bridge to `xst-analyze`: static scope/emptiness/
//!   cardinality inference, evaluation gating, and rewrite verification;
//! * [`mod@eval`] — an evaluator with operator statistics (node counts and
//!   intermediate materialization volume — what composition saves);
//! * [`rules`] — rewrite rules, each justified by a numbered law of the
//!   paper (image fusion by C.1(f), empty pruning by C.1(g), union merges
//!   by C.1(a)/(i), domain fusion by Defs 7.3/7.4, composition fusion by
//!   Theorem 11.2);
//! * [`optimizer`] — a fixpoint rule driver whose trace doubles as
//!   `EXPLAIN` output;
//! * [`mod@explain`] — `EXPLAIN ANALYZE`: optimize, execute, and render a
//!   per-operator tree of wall-times and cardinalities;
//! * [`cost`] — cardinality/work estimation used to sanity-check rewrites.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cost;
pub mod eval;
pub mod explain;
pub mod expr;
pub mod optimizer;
pub mod rules;
pub mod sharded;

pub use analysis::{check, env_for};
pub use cost::{estimate, estimated_work, StatsSource, TableStats, DEFAULT_SELECTIVITY};
pub use eval::{
    eval, eval_counted, eval_parallel, eval_parallel_unchecked, EvalStats, OpKind, OpStat,
};
pub use explain::{explain_analyze, ExplainAnalyze, PlanNode};
pub use expr::{Bindings, Expr};
pub use optimizer::{explain, Optimizer, Trace, TraceEntry};
pub use rules::{default_rules, spec_compose, Rule};
pub use sharded::{eval_sharded, merge_bindings, ShardedBindings};
