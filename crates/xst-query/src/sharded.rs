//! Shard-aware plan lowering: evaluate an expression over per-shard
//! fragments, scattering each operator and gathering once at the root.
//!
//! The input is a [`ShardedBindings`]: every table bound as the list of
//! its per-shard fragments (pairwise disjoint, union = the table). The
//! evaluator keeps intermediates **scattered** as long as the algebra
//! allows and tracks one bit of provenance per intermediate — whether
//! its partition is still *aligned* with the engine's member-hash
//! routing:
//!
//! * table scans start aligned (the engine routed them by member hash);
//! * subset-producing operators (union/intersect/difference/restrict)
//!   preserve their carrier's alignment — every output member keeps the
//!   identity it was routed by;
//! * member-transforming operators (domain, image, relative product,
//!   cross) emit *new* members, so their outputs are an arbitrary
//!   partition (`aligned = false`) — still a valid fragmentation, just
//!   not zip-safe.
//!
//! Zip lowerings (`⋃ᵢ Aᵢ∩Bᵢ`) need alignment on BOTH sides; when either
//! side lost it, the evaluator falls back to the always-valid
//! fragment-vs-whole lowering (`⋃ᵢ Aᵢ∩B`) instead of silently dropping
//! members. Union zips for any equal-count partition. The result is
//! **identical** to single-set evaluation on every plan — the
//! differential tests below drive both evaluators over the same inputs.
//!
//! The static-analysis gate runs once against the *merged* bindings:
//! analysis facts are properties of whole tables, and the merge is exact,
//! so gating on the union neither over- nor under-rejects.

use crate::eval::{timed, EvalStats, OpKind};
use crate::expr::{Bindings, Expr};
use std::collections::BTreeMap;
use xst_core::ops::{
    cross, gather, par_intersection, par_union, scatter_difference_whole, scatter_image,
    scatter_intersection_whole, scatter_relative_product, scatter_restrict, scatter_union,
    scatter_zip_difference, scatter_zip_intersection, sigma_domain, Parallelism,
};
use xst_core::{ExtendedSet, XstError, XstResult};

/// Every table bound as its per-shard fragment list, in shard order.
pub type ShardedBindings = BTreeMap<String, Vec<ExtendedSet>>;

/// Merge sharded bindings into whole-table [`Bindings`] (for the
/// analysis gate, or to hand a sharded environment to a single-set
/// consumer). Exact: gather is ordered union over disjoint fragments.
pub fn merge_bindings(sharded: &ShardedBindings) -> Bindings {
    sharded
        .iter()
        .map(|(name, frags)| (name.clone(), gather(frags)))
        .collect()
}

/// An intermediate during sharded evaluation.
enum Frag {
    /// Merged to a single set (literals, member-transforming results
    /// that a later operator needed whole).
    Whole(ExtendedSet),
    /// Still scattered across shards.
    Sharded {
        parts: Vec<ExtendedSet>,
        /// Partitioned by the engine's member-hash routing (zip-safe)?
        aligned: bool,
    },
}

impl Frag {
    fn card(&self) -> usize {
        match self {
            Frag::Whole(s) => s.card(),
            Frag::Sharded { parts, .. } => parts.iter().map(ExtendedSet::card).sum(),
        }
    }

    /// Merge to a single set (gather if scattered).
    fn into_whole(self) -> ExtendedSet {
        match self {
            Frag::Whole(s) => s,
            Frag::Sharded { parts, .. } => gather(&parts),
        }
    }
}

/// Evaluate `expr` over per-shard fragments, gathering once at the root.
/// Semantically identical to [`crate::eval::eval_parallel`] on the
/// merged bindings; the scatter keeps per-operator work partitioned by
/// shard (and attributes it per shard in the ambient
/// [`xst_obs::cost::QueryCost`] scope).
pub fn eval_sharded(
    expr: &Expr,
    bindings: &ShardedBindings,
    par: &Parallelism,
) -> XstResult<(ExtendedSet, EvalStats)> {
    let merged = merge_bindings(bindings);
    crate::analysis::gate(expr, &merged)?;
    // Same root span name as the whole-set evaluator: consumers of the
    // trace see one `query.eval` per query regardless of sharding.
    let mut span = xst_obs::span!("query.eval", threads = par.threads);
    let mut stats = EvalStats::default();
    let frag = eval_frag(expr, bindings, &mut stats, par)?;
    let result = frag.into_whole();
    if span.id().is_some() {
        let shards = bindings.values().map(Vec::len).max().unwrap_or(1);
        span.attr("shards", shards);
        span.attr("nodes", stats.nodes);
        span.attr("rows_out", result.card());
    }
    xst_obs::cost::add_eval(stats.nodes, result.card() as u64);
    if !matches!(expr, Expr::Literal(_) | Expr::Table(_)) {
        stats.intermediate_members -= result.card() as u64;
    }
    stats.result_members = result.card() as u64;
    Ok((result, stats))
}

/// [`timed`] for kernels that produce a fragment list: same per-family
/// profile accounting, rows_out = total members across fragments.
fn timed_parts<F: FnOnce() -> Vec<ExtendedSet>>(
    stats: &mut EvalStats,
    kind: OpKind,
    par: &Parallelism,
    card: usize,
    run: F,
) -> Vec<ExtendedSet> {
    let mut span = xst_obs::SpanGuard::new(kind.span_name());
    let started = std::time::Instant::now();
    let out = run();
    if span.id().is_some() {
        span.attr("card_in", card);
        span.attr("rows_out", out.iter().map(ExtendedSet::card).sum::<usize>());
    }
    drop(span);
    let slot = &mut stats.per_op[kind as usize];
    slot.invocations += 1;
    slot.wall_nanos += started.elapsed().as_nanos() as u64;
    let width = if par.should_parallelize(card) {
        par.threads as u32
    } else {
        1
    };
    slot.max_threads = slot.max_threads.max(width);
    out
}

/// Zip-compatible: both scattered, same fragment count, both aligned.
fn zippable(a: &Frag, b: &Frag) -> bool {
    match (a, b) {
        (
            Frag::Sharded {
                parts: pa,
                aligned: la,
            },
            Frag::Sharded {
                parts: pb,
                aligned: lb,
            },
        ) => *la && *lb && pa.len() == pb.len(),
        _ => false,
    }
}

fn eval_frag(
    expr: &Expr,
    bindings: &ShardedBindings,
    stats: &mut EvalStats,
    par: &Parallelism,
) -> XstResult<Frag> {
    let result = match expr {
        Expr::Literal(s) => Frag::Whole(s.clone()),
        Expr::Table(name) => {
            let parts = bindings
                .get(name)
                .cloned()
                .ok_or_else(|| XstError::NotComposable {
                    reason: format!("unbound table {name}"),
                })?;
            Frag::Sharded {
                parts,
                aligned: true,
            }
        }
        Expr::Union(a, b) => {
            let x = eval_frag(a, bindings, stats, par)?;
            let y = eval_frag(b, bindings, stats, par)?;
            let card = x.card() + y.card();
            // Union zips for ANY equal-count partition; alignment of the
            // result holds only if both inputs were aligned.
            match (x, y) {
                (
                    Frag::Sharded {
                        parts: pa,
                        aligned: la,
                    },
                    Frag::Sharded {
                        parts: pb,
                        aligned: lb,
                    },
                ) if pa.len() == pb.len() => {
                    let parts = timed_parts(stats, OpKind::Union, par, card, || {
                        scatter_union(&pa, &pb, par)
                    });
                    count_intermediate(stats, &parts);
                    return Ok(Frag::Sharded {
                        parts,
                        aligned: la && lb,
                    });
                }
                (x, y) => {
                    let (xs, ys) = (x.into_whole(), y.into_whole());
                    Frag::Whole(timed(stats, OpKind::Union, par, card, || {
                        par_union(&xs, &ys, par)
                    }))
                }
            }
        }
        Expr::Intersect(a, b) => {
            let x = eval_frag(a, bindings, stats, par)?;
            let y = eval_frag(b, bindings, stats, par)?;
            let card = x.card() + y.card();
            if zippable(&x, &y) {
                let (Frag::Sharded { parts: pa, .. }, Frag::Sharded { parts: pb, .. }) = (x, y)
                else {
                    unreachable!("zippable checked the variants");
                };
                let parts = timed_parts(stats, OpKind::Intersect, par, card, || {
                    scatter_zip_intersection(&pa, &pb, par)
                });
                count_intermediate(stats, &parts);
                return Ok(Frag::Sharded {
                    parts,
                    aligned: true,
                });
            }
            // Fragment-vs-whole: valid for any partition of the carrier
            // (intersection commutes, so either scattered side carries).
            match (x, y) {
                (Frag::Sharded { parts, aligned }, other)
                | (other, Frag::Sharded { parts, aligned }) => {
                    let whole = other.into_whole();
                    let out = timed_parts(stats, OpKind::Intersect, par, card, || {
                        scatter_intersection_whole(&parts, &whole, par)
                    });
                    count_intermediate(stats, &out);
                    return Ok(Frag::Sharded {
                        parts: out,
                        aligned,
                    });
                }
                (x, y) => {
                    let (xs, ys) = (x.into_whole(), y.into_whole());
                    Frag::Whole(timed(stats, OpKind::Intersect, par, card, || {
                        par_intersection(&xs, &ys, par)
                    }))
                }
            }
        }
        Expr::Difference(a, b) => {
            let x = eval_frag(a, bindings, stats, par)?;
            let y = eval_frag(b, bindings, stats, par)?;
            let seq = Parallelism::sequential();
            if zippable(&x, &y) {
                let (Frag::Sharded { parts: pa, .. }, Frag::Sharded { parts: pb, .. }) = (x, y)
                else {
                    unreachable!("zippable checked the variants");
                };
                let parts = timed_parts(stats, OpKind::Difference, &seq, 0, || {
                    scatter_zip_difference(&pa, &pb)
                });
                count_intermediate(stats, &parts);
                return Ok(Frag::Sharded {
                    parts,
                    aligned: true,
                });
            }
            match x {
                // Difference is NOT commutative: only the left side may
                // stay scattered.
                Frag::Sharded { parts, aligned } => {
                    let whole = y.into_whole();
                    let out = timed_parts(stats, OpKind::Difference, &seq, 0, || {
                        scatter_difference_whole(&parts, &whole)
                    });
                    count_intermediate(stats, &out);
                    return Ok(Frag::Sharded {
                        parts: out,
                        aligned,
                    });
                }
                x => {
                    let (xs, ys) = (x.into_whole(), y.into_whole());
                    Frag::Whole(timed(stats, OpKind::Difference, &seq, 0, || {
                        xst_core::ops::difference(&xs, &ys)
                    }))
                }
            }
        }
        Expr::Restrict { r, sigma, a } => {
            let rf = eval_frag(r, bindings, stats, par)?;
            let av = eval_frag(a, bindings, stats, par)?.into_whole();
            let card = rf.card();
            match rf {
                Frag::Sharded { parts, aligned } => {
                    let out = timed_parts(stats, OpKind::Restrict, par, card, || {
                        scatter_restrict(&parts, sigma, &av, par)
                    });
                    count_intermediate(stats, &out);
                    // Restriction outputs a subset of its carrier
                    // fragment: alignment survives.
                    return Ok(Frag::Sharded {
                        parts: out,
                        aligned,
                    });
                }
                Frag::Whole(rs) => Frag::Whole(timed(stats, OpKind::Restrict, par, card, || {
                    xst_core::ops::par_sigma_restrict(&rs, sigma, &av, par)
                })),
            }
        }
        Expr::Domain { r, sigma } => {
            // σ-domain transforms members; evaluate whole (the gather is
            // exact, and the op is cheap relative to its carriers).
            let rs = eval_frag(r, bindings, stats, par)?.into_whole();
            Frag::Whole(timed(
                stats,
                OpKind::Domain,
                &Parallelism::sequential(),
                0,
                || sigma_domain(&rs, sigma),
            ))
        }
        Expr::Image { r, a, scope } => {
            let rf = eval_frag(r, bindings, stats, par)?;
            let av = eval_frag(a, bindings, stats, par)?.into_whole();
            let card = rf.card();
            match rf {
                Frag::Sharded { parts, .. } => {
                    let out = timed_parts(stats, OpKind::Image, par, card, || {
                        scatter_image(&parts, &av, scope, par)
                    });
                    count_intermediate(stats, &out);
                    // Image re-scopes members: the output partition is
                    // arbitrary, not member-hash aligned.
                    return Ok(Frag::Sharded {
                        parts: out,
                        aligned: false,
                    });
                }
                Frag::Whole(rs) => Frag::Whole(timed(stats, OpKind::Image, par, card, || {
                    xst_core::ops::par_image(&rs, &av, scope, par)
                })),
            }
        }
        Expr::RelProduct { f, sigma, g, omega } => {
            let ff = eval_frag(f, bindings, stats, par)?;
            let gs = eval_frag(g, bindings, stats, par)?.into_whole();
            let card = ff.card();
            match ff {
                Frag::Sharded { parts, .. } => {
                    let out = timed_parts(stats, OpKind::RelProduct, par, card, || {
                        scatter_relative_product(&parts, sigma, &gs, omega, par)
                    });
                    count_intermediate(stats, &out);
                    return Ok(Frag::Sharded {
                        parts: out,
                        aligned: false,
                    });
                }
                Frag::Whole(fs) => Frag::Whole(timed(stats, OpKind::RelProduct, par, card, || {
                    xst_core::ops::par_relative_product(&fs, sigma, &gs, omega, par)
                })),
            }
        }
        Expr::Cross(a, b) => {
            // `⊗` concatenates tuples — inherently whole-vs-whole.
            let xs = eval_frag(a, bindings, stats, par)?.into_whole();
            let ys = eval_frag(b, bindings, stats, par)?.into_whole();
            let out = cross(&xs, &ys)?;
            let slot = &mut stats.per_op[OpKind::Cross as usize];
            slot.invocations += 1;
            slot.max_threads = slot.max_threads.max(1);
            Frag::Whole(out)
        }
    };
    stats.nodes += 1;
    if !matches!(expr, Expr::Literal(_) | Expr::Table(_)) {
        stats.intermediate_members += result.card() as u64;
    }
    Ok(result)
}

/// Book-keep a scattered intermediate the way the whole-set evaluator
/// books a materialized one, and close out the node count (the scattered
/// arms return early, so they do their own accounting here).
fn count_intermediate(stats: &mut EvalStats, parts: &[ExtendedSet]) {
    stats.nodes += 1;
    stats.intermediate_members += parts.iter().map(|p| p.card() as u64).sum::<u64>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_parallel;
    use proptest::prelude::*;
    use xst_core::ops::partition_members;
    use xst_core::{Scope, SetBuilder, Value};

    fn rel(ks: &[(i64, i64)]) -> ExtendedSet {
        let mut b = SetBuilder::new();
        for (x, y) in ks {
            b.scoped(Value::Int(*y), Value::Int(*x));
        }
        b.build()
    }

    fn shard_env(tables: &[(&str, &ExtendedSet)], shards: usize) -> ShardedBindings {
        tables
            .iter()
            .map(|(n, s)| (n.to_string(), partition_members(s, shards)))
            .collect()
    }

    /// A family of plans exercising every operator family, including
    /// zip, fragment-vs-whole, alignment-loss (image feeding intersect),
    /// and whole-only (cross) paths.
    fn plans() -> Vec<Expr> {
        let sigma = Scope::pairs();
        vec![
            Expr::table("x").union(Expr::table("y")),
            Expr::table("x").intersect(Expr::table("y")),
            Expr::table("x").difference(Expr::table("y")),
            Expr::table("x")
                .union(Expr::table("y"))
                .intersect(Expr::table("x")),
            Expr::table("x")
                .image(Expr::table("k"), sigma.clone())
                .intersect(Expr::table("y")),
            Expr::table("x")
                .image(Expr::table("k"), sigma.clone())
                .union(Expr::table("y").image(Expr::table("k"), sigma.clone())),
            Expr::table("x").rel_product(sigma.clone(), Expr::table("y"), Scope::pairs_inverse()),
            Expr::table("x")
                .difference(Expr::table("y"))
                .union(Expr::table("y").difference(Expr::table("x"))),
        ]
    }

    proptest! {
        #[test]
        fn sharded_eval_matches_whole_eval(
            xs in proptest::collection::vec((0i64..40, 0i64..40), 0..30),
            ys in proptest::collection::vec((0i64..40, 0i64..40), 0..30),
            ks in proptest::collection::vec(0i64..40, 0..8),
            shards in 1usize..5,
        ) {
            let x = rel(&xs);
            let y = rel(&ys);
            let k = ExtendedSet::classical(ks.into_iter().map(Value::Int));
            let par = Parallelism::sequential();
            let sharded = shard_env(&[("x", &x), ("y", &y), ("k", &k)], shards);
            let merged = merge_bindings(&sharded);
            for plan in plans() {
                let (whole, _) = eval_parallel(&plan, &merged, &par).unwrap();
                let (scattered, stats) = eval_sharded(&plan, &sharded, &par).unwrap();
                prop_assert_eq!(&scattered, &whole, "plan {:?} diverged", plan);
                prop_assert!(stats.nodes > 0);
                prop_assert_eq!(stats.result_members, whole.card() as u64);
            }
        }
    }

    #[test]
    fn unbound_table_is_rejected_by_the_gate() {
        let env = ShardedBindings::new();
        let err = eval_sharded(&Expr::table("nope"), &env, &Parallelism::sequential());
        assert!(err.is_err());
    }

    #[test]
    fn merge_bindings_is_exact() {
        let x = rel(&[(1, 2), (3, 4), (5, 6), (7, 8)]);
        let sharded = shard_env(&[("x", &x)], 3);
        let merged = merge_bindings(&sharded);
        assert_eq!(merged.get("x"), Some(&x));
    }
}
