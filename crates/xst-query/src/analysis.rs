//! Bridge between [`Expr`] and the `xst-analyze` static analyzer.
//!
//! The analyzer lives below this crate (it depends only on `xst-core`) and
//! walks plans through the [`AbstractPlan`] trait; this module implements
//! the trait for [`Expr`] and packages the two ways the query layer uses
//! analysis:
//!
//! * [`check`] — analyze an expression against concrete bindings (a
//!   *closed* environment: unbound tables are definite errors) and return
//!   the full [`Analysis`] for inspection (`.check` in the shell, the
//!   soundness harness);
//! * [`gate`] — the evaluator entry gate: reject plans whose analysis
//!   carries error-severity diagnostics with a structured
//!   [`XstError::Analysis`]. Errors are reserved for plans that provably
//!   cannot evaluate, so gating never rejects a plan that would have
//!   evaluated successfully.

use crate::expr::{Bindings, Expr};
use xst_analyze::{analyze, AbstractPlan, Analysis, AnalysisEnv, PlanShape};
use xst_core::{XstError, XstResult};

impl AbstractPlan for Expr {
    fn shape(&self) -> PlanShape<'_, Self> {
        match self {
            Expr::Literal(s) => PlanShape::Literal(s),
            Expr::Table(name) => PlanShape::Table(name),
            Expr::Union(a, b) => PlanShape::Union(a, b),
            Expr::Intersect(a, b) => PlanShape::Intersect(a, b),
            Expr::Difference(a, b) => PlanShape::Difference(a, b),
            Expr::Cross(a, b) => PlanShape::Cross(a, b),
            Expr::Restrict { r, sigma, a } => PlanShape::Restrict { r, sigma, a },
            Expr::Domain { r, sigma } => PlanShape::Domain { r, sigma },
            Expr::Image { r, a, scope } => PlanShape::Image { r, a, scope },
            Expr::RelProduct { f, sigma, g, omega } => PlanShape::RelProduct { f, sigma, g, omega },
        }
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

/// Build the closed analysis environment for `expr` over `bindings`:
/// only tables the expression actually names are abstracted.
pub fn env_for(expr: &Expr, bindings: &Bindings) -> AnalysisEnv {
    let mut env = AnalysisEnv::closed();
    for name in expr.tables() {
        if let Some(s) = bindings.get(name) {
            env.bind(name, s);
        }
    }
    env
}

/// Statically analyze `expr` against `bindings` without evaluating it.
pub fn check(expr: &Expr, bindings: &Bindings) -> Analysis {
    analyze(expr, &env_for(expr, bindings))
}

/// The evaluator's entry gate: reject provably-failing plans up front.
pub(crate) fn gate(expr: &Expr, bindings: &Bindings) -> XstResult<()> {
    let analysis = check(expr, bindings);
    match analysis.to_error() {
        Some(e) => Err(XstError::Analysis {
            diagnostics: e.diagnostics.iter().map(|d| d.to_string()).collect(),
        }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_analyze::{DiagCode, Emptiness, Severity};
    use xst_core::{xset, xtuple, ExtendedSet};

    #[test]
    fn well_scoped_plans_pass_with_exact_results() {
        let mut b = Bindings::new();
        b.insert("x".into(), xset![1, 2]);
        b.insert("y".into(), xset![2, 3]);
        let e = Expr::table("x").intersect(Expr::table("y"));
        let a = check(&e, &b);
        assert!(!a.is_rejected());
        assert!(a.proved_safe());
        assert_eq!(a.root.set.exact, Some(xset![2]));
        assert!(gate(&e, &b).is_ok());
    }

    #[test]
    fn unbound_tables_are_gated_with_structured_errors() {
        let e = Expr::table("nope");
        let err = gate(&e, &Bindings::new()).expect_err("unbound table");
        match err {
            XstError::Analysis { diagnostics } => {
                assert!(diagnostics[0].contains("unbound-table"), "{diagnostics:?}");
            }
            other => panic!("expected Analysis error, got {other}"),
        }
    }

    #[test]
    fn proven_cross_collisions_are_gated() {
        let mut b = Bindings::new();
        b.insert("bad".into(), xset![xset!["p" => 0].into_value()]);
        b.insert("bad2".into(), xset![xset!["q" => 0].into_value()]);
        let e = Expr::table("bad").cross(Expr::table("bad2"));
        let a = check(&e, &b);
        assert!(a.is_rejected());
        assert!(
            a.errors().any(|d| d.code == DiagCode::CrossCollision),
            "{:?}",
            a.diagnostics
        );
        assert!(gate(&e, &b).is_err());
    }

    #[test]
    fn statically_empty_subplans_warn_but_evaluate() {
        let mut b = Bindings::new();
        b.insert("c".into(), xset!["a", "b"]); // classical: scope ∅
        b.insert("s".into(), xset!["a" => 1]); // scoped at 1
        let e = Expr::table("c").intersect(Expr::table("s"));
        let a = check(&e, &b);
        assert!(!a.is_rejected());
        assert_eq!(a.root.set.emptiness, Emptiness::ProvablyEmpty);
        assert!(a
            .warnings()
            .any(|d| d.code == DiagCode::EmptySubplan && d.severity == Severity::Warning));
        assert!(gate(&e, &b).is_ok());
    }

    #[test]
    fn vacuous_specs_warn() {
        let mut b = Bindings::new();
        b.insert("r".into(), xset![ExtendedSet::pair("a", "x").into_value()]);
        let e = Expr::table("r").domain(ExtendedSet::empty());
        let a = check(&e, &b);
        assert!(!a.is_rejected());
        assert!(a.warnings().any(|d| d.code == DiagCode::VacuousSpec));
    }

    #[test]
    fn unprovable_cross_safety_withdraws_the_proof_only() {
        let mut b = Bindings::new();
        // Large enough to defeat the exact fold and the member scan? No —
        // simpler: non-tuple members on one side, tuple on the other, but
        // keep them abstract by going through an operator that erases the
        // tuple flags (Domain).
        b.insert("r".into(), xset![ExtendedSet::pair("a", "x").into_value()]);
        let big = ExtendedSet::classical((0..5000).map(xst_core::Value::Int));
        b.insert("big".into(), big);
        let e = Expr::table("big").cross(Expr::table("big"));
        let a = check(&e, &b);
        assert!(!a.is_rejected(), "{:?}", a.diagnostics);
        assert!(!a.proved_safe());
        assert!(a
            .warnings()
            .any(|d| d.code == DiagCode::MaybeCrossCollision));
    }

    #[test]
    fn tuple_only_tables_prove_cross_safety() {
        let mut b = Bindings::new();
        b.insert("t".into(), xset![xtuple!["a"].into_value()]);
        b.insert("u".into(), xset![xtuple!["x", "y"].into_value()]);
        let e = Expr::table("t").cross(Expr::table("u"));
        let a = check(&e, &b);
        assert!(a.proved_safe(), "{:?}", a.diagnostics);
    }
}
