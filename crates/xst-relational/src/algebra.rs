//! The relational algebra, implemented *only* with XST operations.
//!
//! | relational op | XST realization |
//! |---|---|
//! | selection | σ-restriction (Def 7.6) via the fused image with an identity projection |
//! | projection | σ-domain (Def 7.4) |
//! | equijoin | relative product (Def 10.1) |
//! | rename | schema-level (the identity is untouched — names are presentation) |
//! | union/intersection/difference | the boolean merges of canonical identities |

use crate::relation::{RelSchema, Relation};
use xst_core::ops::{
    difference as set_difference, image, intersection as set_intersection, relative_product,
    sigma_domain, union as set_union, Scope,
};
use xst_core::{ExtendedSet, Value, XstError, XstResult};

/// `σ_{field = value}(r)` — selection by equality on one column.
pub fn select_eq(r: &Relation, field: &str, value: &Value) -> XstResult<Relation> {
    select_in(r, field, std::slice::from_ref(value))
}

/// `σ_{field ∈ values}(r)` — selection by membership. One image call: the
/// witness set carries every wanted key (Consequence C.1(a) in action).
pub fn select_in(r: &Relation, field: &str, values: &[Value]) -> XstResult<Relation> {
    let pos = r.schema().position(field)? as i64;
    let witness = ExtendedSet::classical(
        values
            .iter()
            .map(|v| Value::Set(ExtendedSet::tuple([v.clone()]))),
    );
    let scope = Scope::new(
        ExtendedSet::tuple([Value::Int(pos + 1)]),
        identity_spec(r.schema().arity() as i64),
    );
    Relation::from_identity(r.schema().clone(), image(r.identity(), &witness, &scope))
}

/// `π_{fields}(r)` — projection (distinct by construction).
pub fn project(r: &Relation, fields: &[&str]) -> XstResult<Relation> {
    let spec = ExtendedSet::tuple(
        fields
            .iter()
            .map(|f| r.schema().position(f).map(|p| Value::Int(p as i64 + 1)))
            .collect::<XstResult<Vec<_>>>()?,
    );
    let schema = RelSchema::new(fields.iter().map(|s| s.to_string()))?;
    Relation::from_identity(schema, sigma_domain(r.identity(), &spec))
}

/// Equijoin `l ⋈_{lf = rf} r`: the relative product keeping the left tuple
/// in place and shifting the right tuple past it. Output columns are the
/// left columns followed by the right columns; colliding names get a
/// `right_` prefix.
pub fn join(l: &Relation, r: &Relation, lf: &str, rf: &str) -> XstResult<Relation> {
    let lp = l.schema().position(lf)? as i64;
    let rp = r.schema().position(rf)? as i64;
    let ln = l.schema().arity() as i64;
    let rn = r.schema().arity() as i64;
    let sigma = Scope::new(
        identity_spec(ln),
        ExtendedSet::from_pairs([(Value::Int(lp + 1), Value::Int(1))]),
    );
    let omega = Scope::new(
        ExtendedSet::from_pairs([(Value::Int(rp + 1), Value::Int(1))]),
        ExtendedSet::from_pairs((1..=rn).map(|j| (Value::Int(j), Value::Int(ln + j)))),
    );
    let mut columns: Vec<String> = l.schema().columns().to_vec();
    for c in r.schema().columns() {
        if columns.contains(c) {
            columns.push(format!("right_{c}"));
        } else {
            columns.push(c.clone());
        }
    }
    let schema = RelSchema::new(columns)?;
    Relation::from_identity(
        schema,
        relative_product(l.identity(), &sigma, r.identity(), &omega),
    )
}

/// Semijoin `l ⋉_{lf = rf} r`: the rows of `l` that have a join partner in
/// `r` — a σ-restriction of `l` witnessed by `r`'s projected keys, no
/// tuple construction at all.
pub fn semijoin(l: &Relation, r: &Relation, lf: &str, rf: &str) -> XstResult<Relation> {
    let keys = project(r, &[rf])?;
    let lp = l.schema().position(lf)? as i64;
    let scope = Scope::new(
        ExtendedSet::tuple([Value::Int(lp + 1)]),
        identity_spec(l.schema().arity() as i64),
    );
    Relation::from_identity(
        l.schema().clone(),
        xst_core::ops::image(l.identity(), keys.identity(), &scope),
    )
}

/// Antijoin `l ▷_{lf = rf} r`: the rows of `l` with *no* join partner —
/// the set difference of `l` and its semijoin.
pub fn antijoin(l: &Relation, r: &Relation, lf: &str, rf: &str) -> XstResult<Relation> {
    let matched = semijoin(l, r, lf, rf)?;
    Relation::from_identity(
        l.schema().clone(),
        set_difference(l.identity(), matched.identity()),
    )
}

/// `ρ` — rename columns; the identity is untouched.
pub fn rename(r: &Relation, mapping: &[(&str, &str)]) -> XstResult<Relation> {
    let columns: Vec<String> = r
        .schema()
        .columns()
        .iter()
        .map(|c| {
            mapping
                .iter()
                .find(|(old, _)| old == c)
                .map(|(_, new)| new.to_string())
                .unwrap_or_else(|| c.clone())
        })
        .collect();
    Relation::from_identity(RelSchema::new(columns)?, r.identity().clone())
}

fn check_compatible(a: &Relation, b: &Relation) -> XstResult<()> {
    if a.schema().arity() == b.schema().arity() {
        Ok(())
    } else {
        Err(XstError::NotComposable {
            reason: format!(
                "union-compatible relations required: arity {} vs {}",
                a.schema().arity(),
                b.schema().arity()
            ),
        })
    }
}

/// `a ∪ b` (union-compatible).
pub fn union(a: &Relation, b: &Relation) -> XstResult<Relation> {
    check_compatible(a, b)?;
    Relation::from_identity(a.schema().clone(), set_union(a.identity(), b.identity()))
}

/// `a ∩ b` (union-compatible).
pub fn intersection(a: &Relation, b: &Relation) -> XstResult<Relation> {
    check_compatible(a, b)?;
    Relation::from_identity(
        a.schema().clone(),
        set_intersection(a.identity(), b.identity()),
    )
}

/// `a ~ b` (union-compatible).
pub fn difference(a: &Relation, b: &Relation) -> XstResult<Relation> {
    check_compatible(a, b)?;
    Relation::from_identity(
        a.schema().clone(),
        set_difference(a.identity(), b.identity()),
    )
}

/// The identity re-scope spec `{1^1, ..., n^n}`.
fn identity_spec(n: i64) -> ExtendedSet {
    ExtendedSet::from_pairs((1..=n).map(|i| (Value::Int(i), Value::Int(i))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suppliers() -> Relation {
        Relation::from_rows(
            RelSchema::new(["sid", "city"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::sym("london")],
                vec![Value::Int(2), Value::sym("paris")],
                vec![Value::Int(3), Value::sym("london")],
            ],
        )
        .unwrap()
    }

    fn supplies() -> Relation {
        Relation::from_rows(
            RelSchema::new(["sid", "pid", "qty"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(10), Value::Int(5)],
                vec![Value::Int(3), Value::Int(20), Value::Int(7)],
                vec![Value::Int(9), Value::Int(30), Value::Int(1)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn selection() {
        let r = select_eq(&suppliers(), "city", &Value::sym("london")).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(&[Value::Int(1), Value::sym("london")]));
        assert!(r.contains_row(&[Value::Int(3), Value::sym("london")]));
    }

    #[test]
    fn selection_in_list() {
        let r = select_in(
            &suppliers(),
            "sid",
            &[Value::Int(1), Value::Int(2), Value::Int(99)],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn projection_is_distinct() {
        let r = project(&suppliers(), &["city"]).unwrap();
        assert_eq!(r.len(), 2, "london collapses");
        assert_eq!(r.schema().columns(), &["city".to_string()]);
    }

    #[test]
    fn projection_reorders() {
        let r = project(&suppliers(), &["city", "sid"]).unwrap();
        assert!(r.contains_row(&[Value::sym("london"), Value::Int(1)]));
    }

    #[test]
    fn equijoin() {
        let j = join(&suppliers(), &supplies(), "sid", "sid").unwrap();
        assert_eq!(j.len(), 3, "sid 9 has no supplier");
        assert_eq!(
            j.schema().columns(),
            &["sid", "city", "right_sid", "pid", "qty"].map(String::from)
        );
        assert!(j.contains_row(&[
            Value::Int(1),
            Value::sym("london"),
            Value::Int(1),
            Value::Int(10),
            Value::Int(100)
        ]));
    }

    #[test]
    fn join_then_project_pipeline() {
        let j = join(&suppliers(), &supplies(), "sid", "sid").unwrap();
        let cities_with_pid10 =
            project(&select_eq(&j, "pid", &Value::Int(10)).unwrap(), &["city"]).unwrap();
        assert_eq!(cities_with_pid10.len(), 2);
    }

    #[test]
    fn rename_only_touches_schema() {
        let r = rename(&suppliers(), &[("city", "location")]).unwrap();
        assert_eq!(r.schema().columns()[1], "location");
        assert_eq!(r.identity(), suppliers().identity());
    }

    #[test]
    fn boolean_ops() {
        let a = suppliers();
        let b = select_eq(&a, "city", &Value::sym("london")).unwrap();
        assert_eq!(union(&a, &b).unwrap().len(), 3);
        assert_eq!(intersection(&a, &b).unwrap().len(), 2);
        assert_eq!(difference(&a, &b).unwrap().len(), 1);
        assert!(union(&a, &supplies()).is_err(), "arity mismatch");
    }

    #[test]
    fn empty_selection_flows_through() {
        let none = select_eq(&suppliers(), "city", &Value::sym("tokyo")).unwrap();
        assert!(none.is_empty());
        let p = project(&none, &["sid"]).unwrap();
        assert!(p.is_empty());
        let j = join(&none, &supplies(), "sid", "sid").unwrap();
        assert!(j.is_empty());
    }

    #[test]
    fn unknown_columns_error() {
        assert!(select_eq(&suppliers(), "bogus", &Value::Int(0)).is_err());
        assert!(project(&suppliers(), &["bogus"]).is_err());
        assert!(join(&suppliers(), &supplies(), "bogus", "sid").is_err());
        assert!(semijoin(&suppliers(), &supplies(), "bogus", "sid").is_err());
    }

    #[test]
    fn semijoin_keeps_matching_left_rows_only() {
        let s = semijoin(&suppliers(), &supplies(), "sid", "sid").unwrap();
        assert_eq!(s.len(), 3, "sids 1,2,3 supply; schema unchanged");
        assert_eq!(s.schema(), suppliers().schema());
        assert!(s.contains_row(&[Value::Int(1), Value::sym("london")]));
    }

    #[test]
    fn antijoin_is_the_complement_of_semijoin() {
        let semi = semijoin(&suppliers(), &supplies(), "sid", "sid").unwrap();
        let anti = antijoin(&suppliers(), &supplies(), "sid", "sid").unwrap();
        assert!(anti.is_empty(), "every supplier supplies something here");
        assert_eq!(
            union(&semi, &anti).unwrap().identity(),
            suppliers().identity()
        );
        // Remove supplier 1's supplies and it shows up in the antijoin.
        let fewer = select_in(
            &supplies(),
            "sid",
            &[Value::Int(2), Value::Int(3), Value::Int(9)],
        )
        .unwrap();
        let anti2 = antijoin(&suppliers(), &fewer, "sid", "sid").unwrap();
        assert_eq!(anti2.len(), 1);
        assert!(anti2.contains_row(&[Value::Int(1), Value::sym("london")]));
    }

    #[test]
    fn semijoin_agrees_with_join_then_project() {
        // l ⋉ r  ==  π_{l-cols}(l ⋈ r) for these key-unique relations.
        let semi = semijoin(&suppliers(), &supplies(), "sid", "sid").unwrap();
        let joined = join(&suppliers(), &supplies(), "sid", "sid").unwrap();
        let projected = project(&joined, &["sid", "city"]).unwrap();
        assert_eq!(semi.identity(), projected.identity());
    }
}
