//! A small fluent query builder over a [`Catalog`].
//!
//! Queries both *execute* (through the algebra in [`crate::algebra`], which
//! tracks schemas) and *compile* to an [`xst_query::Expr`] (so the
//! law-driven optimizer and its `EXPLAIN` trace apply).

use crate::aggregate::{self, Aggregate};
use crate::algebra;
use crate::catalog::Catalog;
use crate::relation::Relation;
use xst_core::ops::Scope;
use xst_core::{ExtendedSet, Value, XstResult};
use xst_query::Expr;

/// One step of a query pipeline.
#[derive(Debug, Clone)]
enum Op {
    SelectEq {
        field: String,
        value: Value,
    },
    SelectIn {
        field: String,
        values: Vec<Value>,
    },
    Project {
        fields: Vec<String>,
    },
    Join {
        right: String,
        lf: String,
        rf: String,
    },
    Union {
        right: String,
    },
    Intersect {
        right: String,
    },
    Difference {
        right: String,
    },
    Rename {
        mapping: Vec<(String, String)>,
    },
    GroupBy {
        keys: Vec<String>,
        aggs: Vec<(Aggregate, String)>,
    },
}

/// A fluent pipeline rooted at a named relation.
#[derive(Debug, Clone)]
pub struct Query {
    root: String,
    ops: Vec<Op>,
}

impl Query {
    /// Start from the relation named `root`.
    pub fn from(root: impl Into<String>) -> Query {
        Query {
            root: root.into(),
            ops: Vec::new(),
        }
    }

    /// `WHERE field = value`.
    pub fn select_eq(mut self, field: impl Into<String>, value: Value) -> Query {
        self.ops.push(Op::SelectEq {
            field: field.into(),
            value,
        });
        self
    }

    /// `WHERE field IN values`.
    pub fn select_in(mut self, field: impl Into<String>, values: Vec<Value>) -> Query {
        self.ops.push(Op::SelectIn {
            field: field.into(),
            values,
        });
        self
    }

    /// `SELECT DISTINCT fields`.
    pub fn project(mut self, fields: &[&str]) -> Query {
        self.ops.push(Op::Project {
            fields: fields.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Equijoin with another catalog relation.
    pub fn join(
        mut self,
        right: impl Into<String>,
        lf: impl Into<String>,
        rf: impl Into<String>,
    ) -> Query {
        self.ops.push(Op::Join {
            right: right.into(),
            lf: lf.into(),
            rf: rf.into(),
        });
        self
    }

    /// Union with another catalog relation.
    pub fn union(mut self, right: impl Into<String>) -> Query {
        self.ops.push(Op::Union {
            right: right.into(),
        });
        self
    }

    /// Intersection with another catalog relation.
    pub fn intersect(mut self, right: impl Into<String>) -> Query {
        self.ops.push(Op::Intersect {
            right: right.into(),
        });
        self
    }

    /// Difference with another catalog relation.
    pub fn difference(mut self, right: impl Into<String>) -> Query {
        self.ops.push(Op::Difference {
            right: right.into(),
        });
        self
    }

    /// `GROUP BY keys` with aggregates.
    pub fn group_by(mut self, keys: &[&str], aggs: &[(Aggregate, &str)]) -> Query {
        self.ops.push(Op::GroupBy {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            aggs: aggs.iter().map(|(a, c)| (*a, c.to_string())).collect(),
        });
        self
    }

    /// Rename columns.
    pub fn rename(mut self, mapping: &[(&str, &str)]) -> Query {
        self.ops.push(Op::Rename {
            mapping: mapping
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        });
        self
    }

    /// Execute against a catalog.
    pub fn run(&self, catalog: &Catalog) -> XstResult<Relation> {
        let mut current = catalog.get(&self.root)?.clone();
        for op in &self.ops {
            current = match op {
                Op::SelectEq { field, value } => algebra::select_eq(&current, field, value)?,
                Op::SelectIn { field, values } => algebra::select_in(&current, field, values)?,
                Op::Project { fields } => {
                    let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                    algebra::project(&current, &refs)?
                }
                Op::Join { right, lf, rf } => algebra::join(&current, catalog.get(right)?, lf, rf)?,
                Op::Union { right } => algebra::union(&current, catalog.get(right)?)?,
                Op::Intersect { right } => algebra::intersection(&current, catalog.get(right)?)?,
                Op::Difference { right } => algebra::difference(&current, catalog.get(right)?)?,
                Op::Rename { mapping } => {
                    let refs: Vec<(&str, &str)> = mapping
                        .iter()
                        .map(|(a, b)| (a.as_str(), b.as_str()))
                        .collect();
                    algebra::rename(&current, &refs)?
                }
                Op::GroupBy { keys, aggs } => {
                    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                    let agg_refs: Vec<(Aggregate, &str)> =
                        aggs.iter().map(|(a, c)| (*a, c.as_str())).collect();
                    aggregate::group_by(&current, &key_refs, &agg_refs)?
                }
            };
        }
        Ok(current)
    }

    /// Compile to a logical [`Expr`] over the catalog's bindings.
    ///
    /// Schema positions are resolved by *running the schema computation*
    /// (not the data) through the same pipeline, so the compiled expression
    /// matches what [`Query::run`] executes.
    pub fn to_expr(&self, catalog: &Catalog) -> XstResult<Expr> {
        let mut schema = catalog.get(&self.root)?.schema().clone();
        let mut expr = Expr::table(&self.root);
        for op in &self.ops {
            match op {
                Op::SelectEq { field, value } => {
                    let pos = schema.position(field)? as i64;
                    let witness =
                        ExtendedSet::classical([Value::Set(ExtendedSet::tuple([value.clone()]))]);
                    expr = expr.image(
                        Expr::lit(witness),
                        // Witness drives σ1 on the *relation* side, so the
                        // scope is flipped relative to application: the
                        // pipeline restricts `expr` by the literal.
                        Scope::new(
                            ExtendedSet::tuple([Value::Int(pos + 1)]),
                            identity_spec(schema.arity() as i64),
                        ),
                    );
                    // NOTE: Expr::Image applies r[a]; here r = expr.
                    // Schema unchanged by selection.
                }
                Op::SelectIn { field, values } => {
                    let pos = schema.position(field)? as i64;
                    let witness = ExtendedSet::classical(
                        values
                            .iter()
                            .map(|v| Value::Set(ExtendedSet::tuple([v.clone()]))),
                    );
                    expr = expr.image(
                        Expr::lit(witness),
                        Scope::new(
                            ExtendedSet::tuple([Value::Int(pos + 1)]),
                            identity_spec(schema.arity() as i64),
                        ),
                    );
                }
                Op::Project { fields } => {
                    let spec = ExtendedSet::tuple(
                        fields
                            .iter()
                            .map(|f| schema.position(f).map(|p| Value::Int(p as i64 + 1)))
                            .collect::<XstResult<Vec<_>>>()?,
                    );
                    expr = expr.domain(spec);
                    schema = crate::relation::RelSchema::new(fields.clone())?;
                }
                Op::Join { right, lf, rf } => {
                    let right_rel = catalog.get(right)?;
                    let lp = schema.position(lf)? as i64;
                    let rp = right_rel.schema().position(rf)? as i64;
                    let ln = schema.arity() as i64;
                    let rn = right_rel.schema().arity() as i64;
                    let sigma = Scope::new(
                        identity_spec(ln),
                        ExtendedSet::from_pairs([(Value::Int(lp + 1), Value::Int(1))]),
                    );
                    let omega = Scope::new(
                        ExtendedSet::from_pairs([(Value::Int(rp + 1), Value::Int(1))]),
                        ExtendedSet::from_pairs(
                            (1..=rn).map(|j| (Value::Int(j), Value::Int(ln + j))),
                        ),
                    );
                    expr = expr.rel_product(sigma, Expr::table(right), omega);
                    // Recompute the joined schema the same way algebra::join
                    // does.
                    let mut columns: Vec<String> = schema.columns().to_vec();
                    for c in right_rel.schema().columns() {
                        if columns.contains(c) {
                            columns.push(format!("right_{c}"));
                        } else {
                            columns.push(c.clone());
                        }
                    }
                    schema = crate::relation::RelSchema::new(columns)?;
                }
                Op::Union { right } => expr = expr.union(Expr::table(right)),
                Op::Intersect { right } => expr = expr.intersect(Expr::table(right)),
                Op::Difference { right } => expr = expr.difference(Expr::table(right)),
                Op::Rename { .. } => { /* presentation only */ }
                Op::GroupBy { .. } => {
                    return Err(xst_core::XstError::NotComposable {
                        reason: "aggregation has no logical-expression form; \
                                 run the pipeline instead"
                            .into(),
                    })
                }
            }
        }
        Ok(expr)
    }
}

fn identity_spec(n: i64) -> ExtendedSet {
    ExtendedSet::from_pairs((1..=n).map(|i| (Value::Int(i), Value::Int(i))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelSchema;
    use xst_query::eval;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            "suppliers",
            Relation::from_rows(
                RelSchema::new(["sid", "city"]).unwrap(),
                vec![
                    vec![Value::Int(1), Value::sym("london")],
                    vec![Value::Int(2), Value::sym("paris")],
                    vec![Value::Int(3), Value::sym("london")],
                ],
            )
            .unwrap(),
        );
        cat.register(
            "supplies",
            Relation::from_rows(
                RelSchema::new(["sid", "pid", "qty"]).unwrap(),
                vec![
                    vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                    vec![Value::Int(2), Value::Int(10), Value::Int(5)],
                    vec![Value::Int(3), Value::Int(20), Value::Int(7)],
                ],
            )
            .unwrap(),
        );
        cat
    }

    #[test]
    fn pipeline_runs() {
        let cat = catalog();
        let result = Query::from("suppliers")
            .select_eq("city", Value::sym("london"))
            .project(&["sid"])
            .run(&cat)
            .unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.contains_row(&[Value::Int(1)]));
        assert!(result.contains_row(&[Value::Int(3)]));
    }

    #[test]
    fn join_pipeline_runs() {
        let cat = catalog();
        let result = Query::from("suppliers")
            .join("supplies", "sid", "sid")
            .select_eq("pid", Value::Int(10))
            .project(&["city"])
            .run(&cat)
            .unwrap();
        assert_eq!(result.len(), 2, "london and paris supply pid 10");
    }

    #[test]
    fn compiled_expr_matches_run() {
        let cat = catalog();
        for q in [
            Query::from("suppliers")
                .select_eq("city", Value::sym("london"))
                .project(&["sid"]),
            Query::from("suppliers").join("supplies", "sid", "sid"),
            Query::from("suppliers")
                .join("supplies", "sid", "sid")
                .select_eq("pid", Value::Int(10))
                .project(&["city"]),
            Query::from("suppliers").select_in("sid", vec![Value::Int(1), Value::Int(3)]),
        ] {
            let via_algebra = q.run(&cat).unwrap();
            let expr = q.to_expr(&cat).unwrap();
            let via_expr = eval(&expr, &cat.bindings()).unwrap();
            assert_eq!(via_algebra.identity(), &via_expr, "query {q:?} diverged");
        }
    }

    #[test]
    fn optimizer_applies_to_compiled_queries() {
        let cat = catalog();
        let q = Query::from("suppliers")
            .select_eq("city", Value::sym("london"))
            .project(&["sid"]);
        let expr = q.to_expr(&cat).unwrap();
        let (optimized, _trace) = xst_query::Optimizer::new().optimize(&expr);
        let a = eval(&expr, &cat.bindings()).unwrap();
        let b = eval(&optimized, &cat.bindings()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn set_ops_and_rename() {
        let cat = catalog();
        let londoners = Query::from("suppliers")
            .select_eq("city", Value::sym("london"))
            .run(&cat)
            .unwrap();
        let mut cat2 = catalog();
        cat2.register("londoners", londoners);
        let rest = Query::from("suppliers")
            .difference("londoners")
            .rename(&[("city", "location")])
            .run(&cat2)
            .unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.schema().columns()[1], "location");
    }

    #[test]
    fn missing_root_errors() {
        assert!(Query::from("nope").run(&catalog()).is_err());
        assert!(Query::from("nope").to_expr(&catalog()).is_err());
    }
}
