//! Nested relations (NF²) — relation-valued columns.
//!
//! Classical formulations struggle with relations inside tuples (the
//! Skolem objection the paper cites about n-tuples as operands); in XST a
//! relation is a value like any other, so nesting and unnesting are plain
//! restructurings:
//!
//! * [`nest`] groups rows by key columns and folds the remaining columns
//!   into one *relation-valued* column (a classical set of tuples);
//! * [`unnest`] flattens it back;
//! * [`left_outer_join`] pads unmatched left rows with `∅` — no NULL
//!   machinery needed, the empty set is a first-class value.

use crate::relation::{RelSchema, Relation};
use xst_core::ops::group_by_key;
use xst_core::{ExtendedSet, Value, XstResult};

/// Group by `key_cols`; the remaining columns become a single
/// relation-valued column named `nested_as`.
pub fn nest(r: &Relation, key_cols: &[&str], nested_as: &str) -> XstResult<Relation> {
    let key_positions: Vec<usize> = key_cols
        .iter()
        .map(|c| r.schema().position(c))
        .collect::<XstResult<_>>()?;
    let rest_positions: Vec<usize> = (0..r.schema().arity())
        .filter(|p| !key_positions.contains(p))
        .collect();
    let key_spec = ExtendedSet::from_pairs(
        key_positions
            .iter()
            .enumerate()
            .map(|(out, &pos)| (Value::Int(pos as i64 + 1), Value::Int(out as i64 + 1))),
    );
    let groups = group_by_key(r.identity(), &key_spec);

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(groups.card());
    for (group, key) in groups.iter() {
        let mut row = key
            .as_set()
            .and_then(ExtendedSet::as_tuple)
            .expect("group keys are tuples by construction");
        // The nested value: the group's rows projected to the rest columns.
        let inner = ExtendedSet::classical(
            group
                .as_set()
                .map(|g| {
                    g.iter()
                        .filter_map(|(e, _)| e.as_set().and_then(ExtendedSet::as_tuple))
                        .map(|tuple| {
                            Value::Set(ExtendedSet::tuple(
                                rest_positions.iter().map(|&p| tuple[p].clone()),
                            ))
                        })
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
        );
        row.push(Value::Set(inner));
        rows.push(row);
    }

    let mut columns: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
    columns.push(nested_as.to_string());
    Relation::from_rows(RelSchema::new(columns)?, rows)
}

/// Flatten a relation-valued column: each inner tuple contributes one
/// output row `key_cols × inner_cols`. The inner columns are named
/// `inner_names`.
pub fn unnest(r: &Relation, nested_col: &str, inner_names: &[&str]) -> XstResult<Relation> {
    let pos = r.schema().position(nested_col)?;
    let outer_cols: Vec<(usize, String)> = r
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(i, c)| (i, c.clone()))
        .collect();

    let mut rows: Vec<Vec<Value>> = Vec::new();
    for row in r.rows() {
        let inner = row[pos].as_set_view();
        for (e, _) in inner.iter() {
            let Some(inner_tuple) = e.as_set().and_then(ExtendedSet::as_tuple) else {
                continue;
            };
            let mut out: Vec<Value> = outer_cols.iter().map(|(i, _)| row[*i].clone()).collect();
            out.extend(inner_tuple);
            rows.push(out);
        }
    }

    let mut columns: Vec<String> = outer_cols.into_iter().map(|(_, c)| c).collect();
    columns.extend(inner_names.iter().map(|s| s.to_string()));
    Relation::from_rows(RelSchema::new(columns)?, rows)
}

/// Left outer join: matched rows concatenate as in
/// [`crate::algebra::join`]; unmatched left rows are padded with `∅` in
/// every right column.
pub fn left_outer_join(l: &Relation, r: &Relation, lf: &str, rf: &str) -> XstResult<Relation> {
    let inner = crate::algebra::join(l, r, lf, rf)?;
    let unmatched = crate::algebra::antijoin(l, r, lf, rf)?;
    let pad = vec![Value::empty_set(); r.schema().arity()];
    let padded_rows: Vec<Vec<Value>> = unmatched
        .rows()
        .into_iter()
        .map(|mut row| {
            row.extend(pad.iter().cloned());
            row
        })
        .collect();
    let padded = Relation::from_rows(
        RelSchema::new(inner.schema().columns().to_vec())?,
        padded_rows,
    )?;
    crate::algebra::union(&inner, &padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supplies() -> Relation {
        Relation::from_rows(
            RelSchema::new(["sid", "pid", "qty"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(20), Value::Int(50)],
                vec![Value::Int(2), Value::Int(10), Value::Int(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn nest_groups_rows_into_relation_values() {
        let n = nest(&supplies(), &["sid"], "items").unwrap();
        assert_eq!(n.len(), 2);
        assert_eq!(
            n.schema().columns(),
            &["sid".to_string(), "items".to_string()]
        );
        // Supplier 1 nests two (pid, qty) pairs.
        let row1 = n
            .rows()
            .into_iter()
            .find(|r| r[0] == Value::Int(1))
            .unwrap();
        let items = row1[1].as_set_view();
        assert_eq!(items.card(), 2);
        assert!(items
            .contains_classical(&ExtendedSet::pair(Value::Int(10), Value::Int(100)).into_value()));
    }

    #[test]
    fn nest_unnest_roundtrip() {
        let original = supplies();
        let nested = nest(&original, &["sid"], "items").unwrap();
        let back = unnest(&nested, "items", &["pid", "qty"]).unwrap();
        assert_eq!(back.identity(), original.identity());
        assert_eq!(back.schema().columns(), original.schema().columns());
    }

    #[test]
    fn nest_by_multiple_keys() {
        let n = nest(&supplies(), &["sid", "pid"], "rest").unwrap();
        assert_eq!(n.len(), 3, "every (sid,pid) is unique");
        for row in n.rows() {
            assert_eq!(row[2].as_set_view().card(), 1);
        }
    }

    #[test]
    fn unnest_skips_empty_inner_sets() {
        let r = Relation::from_rows(
            RelSchema::new(["k", "items"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::empty_set()],
                vec![
                    Value::Int(2),
                    Value::Set(ExtendedSet::classical([Value::Set(ExtendedSet::tuple([
                        Value::Int(7),
                    ]))])),
                ],
            ],
        )
        .unwrap();
        let u = unnest(&r, "items", &["v"]).unwrap();
        assert_eq!(u.len(), 1);
        assert!(u.contains_row(&[Value::Int(2), Value::Int(7)]));
    }

    #[test]
    fn left_outer_join_pads_with_empty_set() {
        let suppliers = Relation::from_rows(
            RelSchema::new(["sid", "city"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::sym("london")],
                vec![Value::Int(9), Value::sym("athens")], // supplies nothing
            ],
        )
        .unwrap();
        let j = left_outer_join(&suppliers, &supplies(), "sid", "sid").unwrap();
        assert_eq!(j.len(), 3, "two matches for sid 1 + one padded row");
        assert!(j.contains_row(&[
            Value::Int(9),
            Value::sym("athens"),
            Value::empty_set(),
            Value::empty_set(),
            Value::empty_set()
        ]));
        // The matched rows are exactly the inner join's.
        let inner = crate::algebra::join(&suppliers, &supplies(), "sid", "sid").unwrap();
        for row in inner.rows() {
            assert!(j.contains_row(&row));
        }
    }

    #[test]
    fn bad_columns_error() {
        assert!(nest(&supplies(), &["bogus"], "x").is_err());
        let n = nest(&supplies(), &["sid"], "items").unwrap();
        assert!(unnest(&n, "bogus", &["a"]).is_err());
    }
}
