//! GROUP BY and aggregation, built on XST scope partitioning.
//!
//! The grouping itself is `xst_core::ops::group_by_key` — members are
//! re-scoped by their key projection and collected per scope, so a grouped
//! relation is an ordinary extended set `{ rows_with_key^⟨key⟩ }`.
//! Aggregates then fold each group's column.

use crate::relation::{RelSchema, Relation};
use xst_core::ops::group_by_key;
use xst_core::{ExtendedSet, Value, XstError, XstResult};

/// An aggregate function over one column of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of rows in the group.
    Count,
    /// Sum of an integer column.
    Sum,
    /// Minimum value of a column (by the total order on values).
    Min,
    /// Maximum value of a column.
    Max,
}

impl Aggregate {
    /// The column-name suffix used for the output schema.
    fn label(&self) -> &'static str {
        match self {
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }

    fn fold(&self, values: &[Value]) -> XstResult<Value> {
        match self {
            Aggregate::Count => Ok(Value::Int(values.len() as i64)),
            Aggregate::Sum => {
                let mut total = 0i64;
                for v in values {
                    let Value::Int(i) = v else {
                        return Err(XstError::NotComposable {
                            reason: format!("sum over non-integer value {v}"),
                        });
                    };
                    total += i;
                }
                Ok(Value::Int(total))
            }
            Aggregate::Min => values.iter().min().cloned().ok_or_else(empty_group),
            Aggregate::Max => values.iter().max().cloned().ok_or_else(empty_group),
        }
    }
}

fn empty_group() -> XstError {
    XstError::NotComposable {
        reason: "aggregate over an empty group".into(),
    }
}

/// `SELECT key_cols, agg(col)… FROM r GROUP BY key_cols`.
///
/// The output schema is the key columns followed by one
/// `"{agg}_{column}"` column per aggregate.
pub fn group_by(
    r: &Relation,
    key_cols: &[&str],
    aggregates: &[(Aggregate, &str)],
) -> XstResult<Relation> {
    if key_cols.is_empty() {
        return Err(XstError::NotComposable {
            reason: "group_by needs at least one key column".into(),
        });
    }
    // Key spec: project key columns to positions 1..k.
    let key_positions: Vec<usize> = key_cols
        .iter()
        .map(|c| r.schema().position(c))
        .collect::<XstResult<_>>()?;
    let key_spec = ExtendedSet::from_pairs(
        key_positions
            .iter()
            .enumerate()
            .map(|(out, &pos)| (Value::Int(pos as i64 + 1), Value::Int(out as i64 + 1))),
    );
    let agg_positions: Vec<usize> = aggregates
        .iter()
        .map(|(_, c)| r.schema().position(c))
        .collect::<XstResult<_>>()?;

    let groups = group_by_key(r.identity(), &key_spec);

    let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(groups.card());
    for (group, key) in groups.iter() {
        let key_tuple = key
            .as_set()
            .and_then(ExtendedSet::as_tuple)
            .ok_or_else(|| XstError::NotComposable {
                reason: format!("group key {key} is not a tuple"),
            })?;
        let rows: Vec<Vec<Value>> = group
            .as_set()
            .map(|g| {
                g.iter()
                    .filter_map(|(e, _)| e.as_set().and_then(ExtendedSet::as_tuple))
                    .collect()
            })
            .unwrap_or_default();
        let mut out_row = key_tuple;
        for ((agg, _), &pos) in aggregates.iter().zip(&agg_positions) {
            let column: Vec<Value> = rows.iter().map(|row| row[pos].clone()).collect();
            out_row.push(agg.fold(&column)?);
        }
        out_rows.push(out_row);
    }

    let mut columns: Vec<String> = key_cols.iter().map(|s| s.to_string()).collect();
    for (agg, col) in aggregates {
        columns.push(format!("{}_{col}", agg.label()));
    }
    Relation::from_rows(RelSchema::new(columns)?, out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supplies() -> Relation {
        Relation::from_rows(
            RelSchema::new(["sid", "pid", "qty"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(20), Value::Int(50)],
                vec![Value::Int(2), Value::Int(10), Value::Int(5)],
                vec![Value::Int(3), Value::Int(30), Value::Int(7)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_per_key() {
        let g = group_by(&supplies(), &["sid"], &[(Aggregate::Count, "pid")]).unwrap();
        assert_eq!(
            g.schema().columns(),
            &["sid".to_string(), "count_pid".to_string()]
        );
        assert!(g.contains_row(&[Value::Int(1), Value::Int(2)]));
        assert!(g.contains_row(&[Value::Int(2), Value::Int(1)]));
        assert!(g.contains_row(&[Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn sum_min_max_per_key() {
        let g = group_by(
            &supplies(),
            &["sid"],
            &[
                (Aggregate::Sum, "qty"),
                (Aggregate::Min, "qty"),
                (Aggregate::Max, "qty"),
            ],
        )
        .unwrap();
        assert!(g.contains_row(&[
            Value::Int(1),
            Value::Int(150),
            Value::Int(50),
            Value::Int(100)
        ]));
        assert!(g.contains_row(&[Value::Int(3), Value::Int(7), Value::Int(7), Value::Int(7)]));
    }

    #[test]
    fn multi_column_keys() {
        let g = group_by(&supplies(), &["sid", "pid"], &[(Aggregate::Count, "qty")]).unwrap();
        assert_eq!(g.len(), 4, "every (sid,pid) pair is unique here");
        assert!(g.contains_row(&[Value::Int(1), Value::Int(10), Value::Int(1)]));
    }

    #[test]
    fn sum_rejects_non_integers() {
        let r = Relation::from_rows(
            RelSchema::new(["k", "v"]).unwrap(),
            vec![vec![Value::Int(1), Value::sym("not-a-number")]],
        )
        .unwrap();
        assert!(group_by(&r, &["k"], &[(Aggregate::Sum, "v")]).is_err());
        // Min/Max work on any ordered values.
        assert!(group_by(&r, &["k"], &[(Aggregate::Min, "v")]).is_ok());
    }

    #[test]
    fn empty_relation_groups_to_empty() {
        let r = Relation::from_rows(RelSchema::new(["k", "v"]).unwrap(), vec![]).unwrap();
        let g = group_by(&r, &["k"], &[(Aggregate::Count, "v")]).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn errors_on_bad_columns_and_empty_keys() {
        let s = supplies();
        assert!(group_by(&s, &[], &[(Aggregate::Count, "qty")]).is_err());
        assert!(group_by(&s, &["bogus"], &[(Aggregate::Count, "qty")]).is_err());
        assert!(group_by(&s, &["sid"], &[(Aggregate::Count, "bogus")]).is_err());
    }

    #[test]
    fn aggregation_composes_with_algebra() {
        // total qty per sid, but only for part 10 — selection then group.
        let only10 = crate::algebra::select_eq(&supplies(), "pid", &Value::Int(10)).unwrap();
        let g = group_by(&only10, &["sid"], &[(Aggregate::Sum, "qty")]).unwrap();
        assert!(g.contains_row(&[Value::Int(1), Value::Int(100)]));
        assert!(g.contains_row(&[Value::Int(2), Value::Int(5)]));
        assert_eq!(g.len(), 2);
    }
}
