//! # xst-relational — the relational model embedded in XST
//!
//! The VLDB-1977 claim that the relational model is a special case of
//! extended set processing, made executable:
//!
//! * [`relation`] — relations as classical sets of positional tuples with
//!   named-column presentation;
//! * [`algebra`] — select/project/join/rename/union implemented **only**
//!   with `xst_core` operations (selection = σ-restriction, projection =
//!   σ-domain, join = relative product);
//! * [`catalog`] — named relations, with a loader from `xst_storage` tables;
//! * [`query`] — a fluent pipeline builder that both executes and compiles
//!   to `xst_query` expressions for law-driven optimization;
//! * [`aggregate`] — GROUP BY / aggregation via XST scope partitioning;
//! * [`lang`] — a small textual pipeline language compiling to [`Query`];
//! * [`nested`] — NF² nested relations and outer joins (∅ as the absent value).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod algebra;
pub mod catalog;
pub mod lang;
pub mod nested;
pub mod query;
pub mod relation;

pub use aggregate::{group_by, Aggregate};
pub use catalog::Catalog;
pub use lang::parse_query;
pub use nested::{left_outer_join, nest, unnest};
pub use query::Query;
pub use relation::{RelSchema, Relation};
