//! A small textual pipeline language compiling to [`Query`].
//!
//! ```text
//! from suppliers
//!   | where city = london
//!   | join supplies on sid = sid
//!   | where pid in (10, 20)
//!   | select city, sname
//! ```
//!
//! Grammar (newlines are whitespace; `|` separates stages):
//!
//! ```text
//! pipeline := "from" ident stage*
//! stage    := "|" op
//! op       := "where" ident "=" value
//!           | "where" ident "in" "(" value ("," value)* ")"
//!           | "select" ident ("," ident)*
//!           | "join" ident "on" ident "=" ident
//!           | "union" ident | "intersect" ident | "except" ident
//!           | "rename" ident "->" ident ("," ident "->" ident)*
//!           | "group" "by" ident ("," ident)* "compute" agg ("," agg)*
//! agg      := ("count" | "sum" | "min" | "max") "(" ident ")"
//! value    := integer | "quoted string" | bare-word (symbol)
//! ```

use crate::aggregate::Aggregate;
use crate::query::Query;
use xst_core::{Value, XstError, XstResult};

/// Parse a pipeline into a [`Query`].
pub fn parse_query(input: &str) -> XstResult<Query> {
    let tokens = tokenize(input)?;
    let mut p = Cursor {
        tokens: &tokens,
        pos: 0,
    };
    p.keyword("from")?;
    let root = p.ident()?;
    let mut q = Query::from(root);
    while !p.at_end() {
        p.punct("|")?;
        q = p.stage(q)?;
    }
    Ok(q)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    Int(i64),
    Punct(char),
    Arrow,
}

fn tokenize(input: &str) -> XstResult<Vec<(usize, Tok)>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '|' | ',' | '=' | '(' | ')' => {
                out.push((start, Tok::Punct(c)));
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                out.push((start, Tok::Arrow));
                i += 2;
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(XstError::Parse {
                                offset: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push((start, Tok::Str(s)));
            }
            _ if c.is_alphanumeric() || c == '_' || c == '-' => {
                let mut w = String::new();
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '-')
                {
                    // stop before an arrow
                    if bytes[i] == '-' && bytes.get(i + 1) == Some(&'>') {
                        break;
                    }
                    w.push(bytes[i]);
                    i += 1;
                }
                let tok = match w.parse::<i64>() {
                    Ok(n) => Tok::Int(n),
                    Err(_) => Tok::Word(w),
                };
                out.push((start, tok));
            }
            other => {
                return Err(XstError::Parse {
                    offset: start,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

struct Cursor<'a> {
    tokens: &'a [(usize, Tok)],
    pos: usize,
}

impl Cursor<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn err(&self, message: impl Into<String>) -> XstError {
        XstError::Parse {
            offset: self.tokens.get(self.pos).map(|&(o, _)| o).unwrap_or(0),
            message: message.into(),
        }
    }

    fn next(&mut self) -> XstResult<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| self.err("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> XstResult<()> {
        match self.next()? {
            Tok::Word(ref w) if w == kw => Ok(()),
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn punct(&mut self, p: &str) -> XstResult<()> {
        let c = p.chars().next().expect("non-empty punct");
        match self.next()? {
            Tok::Punct(got) if got == c => Ok(()),
            other => Err(self.err(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.tokens.get(self.pos), Some((_, Tok::Punct(got))) if *got == c)
    }

    fn ident(&mut self) -> XstResult<String> {
        match self.next()? {
            Tok::Word(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn value(&mut self) -> XstResult<Value> {
        match self.next()? {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Str(s) => Ok(Value::str(s)),
            Tok::Word(w) => Ok(Value::sym(w)),
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }

    fn agg(&mut self) -> XstResult<(Aggregate, String)> {
        let name = self.ident()?;
        let agg = match name.as_str() {
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            other => return Err(self.err(format!("unknown aggregate '{other}'"))),
        };
        self.punct("(")?;
        let col = self.ident()?;
        self.punct(")")?;
        Ok((agg, col))
    }

    fn stage(&mut self, q: Query) -> XstResult<Query> {
        let op = self.ident()?;
        match op.as_str() {
            "where" => {
                let field = self.ident()?;
                match self.next()? {
                    Tok::Punct('=') => {
                        let v = self.value()?;
                        Ok(q.select_eq(field, v))
                    }
                    Tok::Word(ref w) if w == "in" => {
                        self.punct("(")?;
                        let mut values = vec![self.value()?];
                        while self.peek_punct(',') {
                            self.punct(",")?;
                            values.push(self.value()?);
                        }
                        self.punct(")")?;
                        Ok(q.select_in(field, values))
                    }
                    other => Err(self.err(format!("expected '=' or 'in', found {other:?}"))),
                }
            }
            "select" => {
                let mut fields = vec![self.ident()?];
                while self.peek_punct(',') {
                    self.punct(",")?;
                    fields.push(self.ident()?);
                }
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                Ok(q.project(&refs))
            }
            "join" => {
                let right = self.ident()?;
                self.keyword("on")?;
                let lf = self.ident()?;
                self.punct("=")?;
                let rf = self.ident()?;
                Ok(q.join(right, lf, rf))
            }
            "group" => {
                self.keyword("by")?;
                let mut keys = vec![self.ident()?];
                while self.peek_punct(',') {
                    self.punct(",")?;
                    keys.push(self.ident()?);
                }
                self.keyword("compute")?;
                let mut aggs: Vec<(Aggregate, String)> = vec![self.agg()?];
                while self.peek_punct(',') {
                    self.punct(",")?;
                    aggs.push(self.agg()?);
                }
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let agg_refs: Vec<(Aggregate, &str)> =
                    aggs.iter().map(|(a, c)| (*a, c.as_str())).collect();
                Ok(q.group_by(&key_refs, &agg_refs))
            }
            "union" => Ok(q.union(self.ident()?)),
            "intersect" => Ok(q.intersect(self.ident()?)),
            "except" => Ok(q.difference(self.ident()?)),
            "rename" => {
                let mut mapping: Vec<(String, String)> = Vec::new();
                loop {
                    let old = self.ident()?;
                    match self.next()? {
                        Tok::Arrow => {}
                        other => return Err(self.err(format!("expected '->', found {other:?}"))),
                    }
                    mapping.push((old, self.ident()?));
                    if self.peek_punct(',') {
                        self.punct(",")?;
                    } else {
                        break;
                    }
                }
                let refs: Vec<(&str, &str)> = mapping
                    .iter()
                    .map(|(a, b)| (a.as_str(), b.as_str()))
                    .collect();
                Ok(q.rename(&refs))
            }
            other => Err(self.err(format!("unknown stage '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::relation::{RelSchema, Relation};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            "suppliers",
            Relation::from_rows(
                RelSchema::new(["sid", "sname", "city"]).unwrap(),
                vec![
                    vec![Value::Int(1), Value::str("Smith"), Value::sym("london")],
                    vec![Value::Int(2), Value::str("Jones"), Value::sym("paris")],
                    vec![Value::Int(3), Value::str("Blake"), Value::sym("london")],
                ],
            )
            .unwrap(),
        );
        cat.register(
            "supplies",
            Relation::from_rows(
                RelSchema::new(["sid", "pid"]).unwrap(),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(20)],
                ],
            )
            .unwrap(),
        );
        cat
    }

    #[test]
    fn parses_and_runs_a_full_pipeline() {
        let q = parse_query(
            "from suppliers
               | where city = london
               | join supplies on sid = sid
               | where pid = 10
               | select sname",
        )
        .unwrap();
        let r = q.run(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains_row(&[Value::str("Smith")]));
    }

    #[test]
    fn where_in_lists() {
        let q = parse_query("from suppliers | where sid in (1, 3) | select city").unwrap();
        let r = q.run(&catalog()).unwrap();
        assert_eq!(r.len(), 1, "both are london; projection dedups");
    }

    #[test]
    fn string_values_and_renames() {
        let q = parse_query(
            "from suppliers | where sname = \"Jones\" | rename city -> location, sid -> id",
        )
        .unwrap();
        let r = q.run(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.schema().columns(),
            &[
                "id".to_string(),
                "sname".to_string(),
                "location".to_string()
            ]
        );
    }

    #[test]
    fn set_operations() {
        let mut cat = catalog();
        let londoners = parse_query("from suppliers | where city = london")
            .unwrap()
            .run(&cat)
            .unwrap();
        cat.register("londoners", londoners);
        let rest = parse_query("from suppliers | except londoners")
            .unwrap()
            .run(&cat)
            .unwrap();
        assert_eq!(rest.len(), 1);
        let back = parse_query("from suppliers | intersect suppliers | union suppliers")
            .unwrap()
            .run(&cat)
            .unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in [
            "",                                  // no from
            "from",                              // missing root
            "from t |",                          // dangling pipe
            "from t | frobnicate x",             // unknown stage
            "from t | where a ? b",              // bad operator
            "from t | where a in (1, 2",         // unclosed list
            "from t | rename a b",               // missing arrow
            "from t | where s = \"unterminated", // bad string
            "from t | where a = $",              // bad char
            "from t where",                      // missing pipe
        ] {
            let got = parse_query(bad);
            assert!(got.is_err(), "should reject: {bad}");
            assert!(matches!(got.unwrap_err(), XstError::Parse { .. }));
        }
    }

    #[test]
    fn compiled_form_matches_run() {
        let cat = catalog();
        let q = parse_query(
            "from suppliers | join supplies on sid = sid | where pid = 10 | select city",
        )
        .unwrap();
        let via_run = q.run(&cat).unwrap();
        let expr = q.to_expr(&cat).unwrap();
        let via_expr = xst_query::eval(&expr, &cat.bindings()).unwrap();
        assert_eq!(via_run.identity(), &via_expr);
    }

    #[test]
    fn group_by_stage_parses_and_runs() {
        let q = parse_query("from supplies | group by sid compute count(pid), sum(pid)").unwrap();
        let r = q.run(&catalog()).unwrap();
        assert_eq!(
            r.schema().columns(),
            &[
                "sid".to_string(),
                "count_pid".to_string(),
                "sum_pid".to_string()
            ]
        );
        assert!(r.contains_row(&[Value::Int(1), Value::Int(1), Value::Int(10)]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn group_by_after_join() {
        let q = parse_query(
            "from suppliers | join supplies on sid = sid              | group by city compute count(pid)",
        )
        .unwrap();
        let r = q.run(&catalog()).unwrap();
        assert!(r.contains_row(&[Value::sym("london"), Value::Int(2)]));
    }

    #[test]
    fn group_by_parse_errors() {
        assert!(parse_query("from t | group sid compute count(x)").is_err());
        assert!(parse_query("from t | group by sid compute frob(x)").is_err());
        assert!(parse_query("from t | group by sid compute count x").is_err());
        assert!(parse_query("from t | group by sid").is_err());
    }

    #[test]
    fn group_by_has_no_expression_form() {
        let q = parse_query("from suppliers | group by city compute count(sid)").unwrap();
        assert!(q.to_expr(&catalog()).is_err());
        assert!(q.run(&catalog()).is_ok());
    }

    #[test]
    fn negative_integers_parse_as_ints() {
        let q = parse_query("from t | where x = -5");
        assert!(q.is_ok());
    }
}
