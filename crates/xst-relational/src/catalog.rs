//! An in-memory catalog of named relations, with a bridge from the storage
//! layer (a stored [`xst_storage::Table`] loads into a [`Relation`] through
//! its set identity).

use crate::relation::{RelSchema, Relation};
use std::collections::BTreeMap;
use xst_core::{XstError, XstResult};
use xst_storage::{BufferPool, SetEngine, StorageError, Table};

/// Named relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Load a stored table through its set identity and register it.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        table: &Table,
        pool: &BufferPool,
    ) -> Result<(), StorageError> {
        let engine = SetEngine::load(table, pool)?;
        let schema =
            RelSchema::new(table.schema.fields().iter().cloned()).map_err(StorageError::Xst)?;
        let relation = Relation::from_identity(schema, engine.identity().clone())
            .map_err(StorageError::Xst)?;
        self.register(name, relation);
        Ok(())
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> XstResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| XstError::NotComposable {
                reason: format!("no relation named {name}"),
            })
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Export as evaluator bindings (name → identity) for `xst_query`.
    pub fn bindings(&self) -> xst_query::Bindings {
        self.relations
            .iter()
            .map(|(name, rel)| (name.clone(), rel.identity().clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::Value;
    use xst_storage::{Record, Schema, Storage};

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        let r =
            Relation::from_rows(RelSchema::new(["a"]).unwrap(), vec![vec![Value::Int(1)]]).unwrap();
        cat.register("t", r.clone());
        assert_eq!(cat.get("t").unwrap(), &r);
        assert!(cat.get("missing").is_err());
        assert_eq!(cat.names(), vec!["t"]);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn register_table_bridges_storage() {
        let storage = Storage::new();
        let mut table = Table::create(&storage, Schema::new(["id", "name"]));
        table
            .load(&[
                Record::new([Value::Int(1), Value::str("bolt")]),
                Record::new([Value::Int(2), Value::str("nut")]),
            ])
            .unwrap();
        let pool = BufferPool::new(storage, 4);
        let mut cat = Catalog::new();
        cat.register_table("parts", &table, &pool).unwrap();
        let rel = cat.get("parts").unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.schema().columns(),
            &["id".to_string(), "name".to_string()]
        );
        assert!(rel.contains_row(&[Value::Int(1), Value::str("bolt")]));
    }

    #[test]
    fn bindings_export() {
        let mut cat = Catalog::new();
        let r =
            Relation::from_rows(RelSchema::new(["a"]).unwrap(), vec![vec![Value::Int(1)]]).unwrap();
        cat.register("t", r.clone());
        let b = cat.bindings();
        assert_eq!(b.get("t").unwrap(), r.identity());
    }
}
