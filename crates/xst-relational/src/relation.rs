//! Relations as extended sets.
//!
//! A relation is a named-column view over a classical set of positional
//! tuples — exactly the embedding the 1977 paper proposes for the
//! relational model: the *data* is an [`ExtendedSet`] (so every relational
//! operation is an XST operation), the schema is presentation.

use std::fmt;
use xst_core::{ExtendedSet, SetBuilder, Value, XstError, XstResult};

/// An ordered list of column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelSchema {
    columns: Vec<String>,
}

impl RelSchema {
    /// Build from column names. Duplicate names are rejected.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> XstResult<RelSchema> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(XstError::NotComposable {
                    reason: format!("duplicate column name {c}"),
                });
            }
        }
        Ok(RelSchema { columns })
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Zero-based position of `name`.
    pub fn position(&self, name: &str) -> XstResult<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| XstError::NotComposable {
                reason: format!("no column named {name}"),
            })
    }
}

/// A relation: schema + canonical set identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: RelSchema,
    identity: ExtendedSet,
}

impl Relation {
    /// Build from rows, validating arity.
    pub fn from_rows(
        schema: RelSchema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> XstResult<Relation> {
        let mut b = SetBuilder::new();
        for row in rows {
            if row.len() != schema.arity() {
                return Err(XstError::NotComposable {
                    reason: format!("row arity {} vs schema arity {}", row.len(), schema.arity()),
                });
            }
            b.classical_elem(Value::Set(ExtendedSet::tuple(row)));
        }
        Ok(Relation {
            schema,
            identity: b.build(),
        })
    }

    /// Wrap an existing identity (the result of an algebra operation).
    ///
    /// Every classically-scoped member must be a tuple of the schema's
    /// arity.
    pub fn from_identity(schema: RelSchema, identity: ExtendedSet) -> XstResult<Relation> {
        for (e, _) in identity.iter() {
            let ok = e
                .as_set()
                .and_then(ExtendedSet::tuple_len)
                .is_some_and(|n| n == schema.arity());
            if !ok {
                return Err(XstError::NotComposable {
                    reason: format!("{e} is not a {}-tuple", schema.arity()),
                });
            }
        }
        Ok(Relation { schema, identity })
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The canonical set identity.
    pub fn identity(&self) -> &ExtendedSet {
        &self.identity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.identity.card()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.identity.is_empty()
    }

    /// Rows in canonical order.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.identity
            .iter()
            .filter_map(|(e, _)| e.as_set().and_then(ExtendedSet::as_tuple))
            .collect()
    }

    /// One column's values (with duplicates removed by set semantics of the
    /// projection identity).
    pub fn column(&self, name: &str) -> XstResult<Vec<Value>> {
        let pos = self.schema.position(name)?;
        let mut out: Vec<Value> = self
            .rows()
            .into_iter()
            .map(|mut row| row.swap_remove(pos))
            .collect();
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Does the relation contain this row?
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.identity
            .contains_classical(&Value::Set(ExtendedSet::tuple(row.iter().cloned())))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema.columns().join(" | "))?;
        for row in self.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts() -> Relation {
        Relation::from_rows(
            RelSchema::new(["pid", "name", "color"]).unwrap(),
            vec![
                vec![Value::Int(1), Value::str("bolt"), Value::sym("red")],
                vec![Value::Int(2), Value::str("nut"), Value::sym("green")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_rejects_duplicates() {
        assert!(RelSchema::new(["a", "b", "a"]).is_err());
        assert!(RelSchema::new(["a", "b"]).is_ok());
    }

    #[test]
    fn from_rows_validates_arity() {
        let schema = RelSchema::new(["a"]).unwrap();
        assert!(Relation::from_rows(schema, vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
    }

    #[test]
    fn rows_roundtrip() {
        let r = parts();
        assert_eq!(r.len(), 2);
        let rows = r.rows();
        assert!(rows.contains(&vec![Value::Int(1), Value::str("bolt"), Value::sym("red")]));
    }

    #[test]
    fn duplicate_rows_collapse() {
        let schema = RelSchema::new(["a"]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 2, "set semantics");
    }

    #[test]
    fn column_extraction() {
        let r = parts();
        assert_eq!(
            r.column("color").unwrap(),
            vec![Value::sym("green"), Value::sym("red")]
        );
        assert!(r.column("bogus").is_err());
    }

    #[test]
    fn contains_row() {
        let r = parts();
        assert!(r.contains_row(&[Value::Int(1), Value::str("bolt"), Value::sym("red")]));
        assert!(!r.contains_row(&[Value::Int(9), Value::str("x"), Value::sym("y")]));
    }

    #[test]
    fn from_identity_validates_shape() {
        let schema = RelSchema::new(["a", "b"]).unwrap();
        let good = xst_core::xset![ExtendedSet::pair(1, 2).into_value()];
        assert!(Relation::from_identity(schema.clone(), good).is_ok());
        let bad = xst_core::xset!["atom"];
        assert!(Relation::from_identity(schema.clone(), bad).is_err());
        let wrong_arity = xst_core::xset![ExtendedSet::tuple([1, 2, 3]).into_value()];
        assert!(Relation::from_identity(schema, wrong_arity).is_err());
    }

    #[test]
    fn display_renders_table() {
        let s = parts().to_string();
        assert!(s.contains("pid | name | color"));
        assert!(s.contains("bolt"));
    }
}
