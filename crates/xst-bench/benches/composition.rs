//! E2 — composition fusion: naive staged pipeline vs the Theorem-11.2
//! fused plan (fusion time excluded: it amortizes across batches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::Scope;
use xst_query::{eval, Bindings, Expr, Optimizer};

fn bench_composition(c: &mut Criterion) {
    let n = 10_000;
    for &stages in &[2usize, 4, 8] {
        let mut expr = Expr::table("x");
        for s in 0..stages {
            expr = Expr::lit(data::stage_relation(n, s)).image(expr, Scope::pairs());
        }
        let (fused, _) = Optimizer::new().optimize(&expr);
        let mut env = Bindings::new();
        env.insert("x".into(), data::stage_inputs(n, 64));

        let mut g = c.benchmark_group("e2_pipeline");
        g.bench_with_input(BenchmarkId::new("naive", stages), &stages, |b, _| {
            b.iter(|| eval(&expr, &env).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("fused", stages), &stages, |b, _| {
            b.iter(|| eval(&fused, &env).unwrap())
        });
        g.finish();
    }
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
