//! E5 — canonical-form costs: canonicalization, O(1) clone, binary-search
//! membership, merge union.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::ops::union;
use xst_core::Value;

fn bench_canonical(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let s = data::scoped_set(n);
        let other = data::scoped_set(n / 2 + 1);
        let probe_e = Value::Int((n / 2) as i64);
        let probe_s = Value::Int(3);

        let mut g = c.benchmark_group("e5_canonical");
        g.bench_with_input(BenchmarkId::new("canonicalize", n), &n, |b, _| {
            b.iter(|| data::scoped_set(n))
        });
        g.bench_with_input(BenchmarkId::new("clone", n), &n, |b, _| {
            b.iter(|| s.clone())
        });
        g.bench_with_input(BenchmarkId::new("membership", n), &n, |b, _| {
            b.iter(|| s.contains(&probe_e, &probe_s))
        });
        g.bench_with_input(BenchmarkId::new("union", n), &n, |b, _| {
            b.iter(|| union(&s, &other))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_canonical);
criterion_main!(benches);
