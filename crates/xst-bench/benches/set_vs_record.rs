//! E1 — set processing vs record processing: select / project / join
//! across cardinalities, both engines over identical stored pages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::Value;
use xst_storage::{BufferPool, RecordEngine, SetEngine, Storage};

fn bench_engines(c: &mut Criterion) {
    for &n in &[100usize, 1_000, 10_000] {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let supplies = data::supplies_table(&storage, n, n.max(1));
        let pool = BufferPool::new(storage, 64);
        let rec = RecordEngine::new(&pool);
        let set_parts = SetEngine::load(&parts, &pool).unwrap();
        let set_supplies = SetEngine::load(&supplies, &pool).unwrap();
        let color = Value::Int(7);

        let mut g = c.benchmark_group("e1_select");
        g.bench_with_input(BenchmarkId::new("record", n), &n, |b, _| {
            b.iter(|| rec.select(&parts, "color", &color).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            b.iter(|| set_parts.select("color", &color).unwrap())
        });
        g.finish();

        let mut g = c.benchmark_group("e1_project");
        g.bench_with_input(BenchmarkId::new("record", n), &n, |b, _| {
            b.iter(|| rec.project(&parts, &["color"]).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            b.iter(|| set_parts.project(&["color"]).unwrap())
        });
        g.finish();

        let mut g = c.benchmark_group("e1_join");
        g.sample_size(20);
        g.bench_with_input(BenchmarkId::new("record", n), &n, |b, _| {
            b.iter(|| rec.join(&supplies, &parts, "pid", "id").unwrap())
        });
        g.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            b.iter(|| set_supplies.join(&set_parts, "pid", "id").unwrap())
        });
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
