//! E4 — image: fused one-pass vs the paper-literal two-pass
//! restriction-then-domain pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::ops::{image, image_two_pass, Scope};
use xst_core::{ExtendedSet, Value};

fn bench_image(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let r = data::pair_relation(n, (n as i64).max(2));
        let a = ExtendedSet::classical(
            (0..(n / 8).max(1)).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
        );
        let scope = Scope::pairs();
        let mut g = c.benchmark_group("e4_image");
        g.sample_size(20);
        g.bench_with_input(BenchmarkId::new("two_pass", n), &n, |b, _| {
            b.iter(|| image_two_pass(&r, &a, &scope))
        });
        g.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| image(&r, &a, &scope))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_image);
criterion_main!(benches);
