//! E10 — parallel set-operation kernels vs worker-thread count, plus the
//! sharded buffer pool under concurrent readers. The acceptance target is
//! the 100k-member restriction: ≥2x at 4 threads over the 1-thread run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::ops::{par_sigma_restrict, par_union, Parallelism, Scope};
use xst_core::{ExtendedSet, Value};
use xst_storage::{BufferPool, PageId, Storage};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_restrict(c: &mut Criterion) {
    let n = 100_000;
    let r = data::pair_relation(n, n as i64);
    let a = ExtendedSet::classical(
        (0..n / 8).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
    );
    let scope = Scope::pairs();
    let mut g = c.benchmark_group("e10_parallel_restrict");
    g.sample_size(20);
    for &k in &THREADS {
        let par = Parallelism::new(k).with_threshold(1);
        g.bench_with_input(BenchmarkId::new("threads", k), &k, |b, _| {
            b.iter(|| par_sigma_restrict(&r, &scope.sigma1, &a, &par))
        });
    }
    g.finish();
}

fn bench_union(c: &mut Criterion) {
    let n = 100_000;
    let s1 = data::scoped_set(n);
    let s2 = data::scoped_set(n + n / 3 + 1);
    let mut g = c.benchmark_group("e10_parallel_union");
    g.sample_size(20);
    for &k in &THREADS {
        let par = Parallelism::new(k).with_threshold(1);
        g.bench_with_input(BenchmarkId::new("threads", k), &k, |b, _| {
            b.iter(|| par_union(&s1, &s2, &par))
        });
    }
    g.finish();
}

fn bench_sharded_pool(c: &mut Criterion) {
    let storage = Storage::new();
    let parts = data::parts_table(&storage, 50_000, 16);
    let file = parts.file.file_id();
    let pages = parts.file.page_count().unwrap();
    let workers = 4;
    let mut g = c.benchmark_group("e11_sharded_pool_reads");
    g.sample_size(10);
    for &shards in &[1usize, 4, 8] {
        let pool = BufferPool::with_shards(storage.clone(), pages.max(shards), shards);
        for p in 0..pages {
            pool.get(PageId { file, page: p }).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let pool = &pool;
                        s.spawn(move || {
                            for i in 0..8 * pages {
                                let page = (i * (w + 1) + w) % pages;
                                pool.get(PageId { file, page }).unwrap();
                            }
                        });
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_restrict, bench_union, bench_sharded_pool);
criterion_main!(benches);
