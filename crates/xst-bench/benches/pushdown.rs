//! E3 — restriction pushdown: full scan vs index-driven page access.
//! Criterion measures wall clock; the page-transfer story is in `report e3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_core::Value;
use xst_storage::{BufferPool, Index, Storage};

fn bench_pushdown(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let pool = BufferPool::new(storage, 8);
        let index = Index::build(&parts.file, &pool, 0).unwrap();
        let key = Value::Int((n / 2) as i64);

        let mut g = c.benchmark_group("e3_point_lookup");
        g.sample_size(20);
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                pool.clear();
                let mut hits = 0u32;
                parts
                    .file
                    .scan(&pool, |_, r| {
                        if r.get(0) == Some(&key) {
                            hits += 1;
                        }
                        Ok(())
                    })
                    .unwrap();
                hits
            })
        });
        g.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| {
                pool.clear();
                let rids = index.lookup(&key);
                let pages = Index::pages_of(&rids);
                let mut hits = 0u32;
                parts
                    .file
                    .scan_pages(&pool, &pages, |_, r| {
                        if r.get(0) == Some(&key) {
                            hits += 1;
                        }
                        Ok(())
                    })
                    .unwrap();
                hits
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
