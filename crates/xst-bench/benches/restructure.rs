//! E6 — dynamic restructuring: record rewrite vs identity re-scope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xst_bench::data;
use xst_storage::{
    restructure_records, restructure_set, BufferPool, Restructuring, SetEngine, Storage,
};

fn bench_restructure(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000] {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let pool = BufferPool::new(storage.clone(), 64);
        let spec = Restructuring::new(
            &parts.schema,
            [("color", "color"), ("qty", "qty"), ("id", "id")],
        )
        .unwrap();
        let engine = SetEngine::load(&parts, &pool).unwrap();

        let mut g = c.benchmark_group("e6_restructure");
        g.sample_size(20);
        g.bench_with_input(BenchmarkId::new("record_rewrite", n), &n, |b, _| {
            b.iter(|| restructure_records(&parts, &pool, &storage, &spec).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("set_rescope", n), &n, |b, _| {
            b.iter(|| restructure_set(engine.identity(), &spec))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_restructure);
criterion_main!(benches);
