//! Minimal fixed-width ASCII table rendering for the experiment report.

/// Accumulates rows and renders an aligned table with a caption.
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> TableBuilder {
        TableBuilder {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render the table with a trailing note.
    pub fn finish(self, note: &str) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        if !note.is_empty() {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new("demo", &["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer-cell".into(), "2".into()]);
        let s = t.finish("a note");
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
        // Alignment: each data line has the same column start for col 2.
        let lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains('1') || l.contains('2'))
            .collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TableBuilder::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
