//! Regenerate every experiment table. Usage:
//!
//! ```text
//! report            # all experiments, default sizes
//! report e1 e3      # selected experiments
//! report --quick    # smaller sizes (CI-friendly)
//! ```
//!
//! Experiments that produce structured numbers (E12–E20) are also
//! written to `BENCH_PR2.json` at the repository root — see EXPERIMENTS.md
//! ("Machine-readable results") for the format.

use xst_bench::experiments as exp;
use xst_bench::report_json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let e1_sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 50_000]
    };
    let e3_sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let e4_sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let e5_sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 500_000]
    };
    let e6_sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    let e2_stages: &[usize] = &[2, 3, 5, 8];

    println!("xst experiment report (seed {:#x})", xst_bench::data::SEED);
    if want("f") {
        print!("{}", exp::f_formal_artifacts());
    }
    if want("e1") {
        print!("{}", exp::e1_set_vs_record(e1_sizes));
    }
    if want("e2") {
        print!(
            "{}",
            exp::e2_composition(e2_stages, if quick { 1_000 } else { 10_000 }, 64)
        );
    }
    if want("e3") {
        print!("{}", exp::e3_pushdown(e3_sizes));
    }
    if want("e4") {
        print!("{}", exp::e4_image_fusion(e4_sizes));
    }
    if want("e5") {
        print!("{}", exp::e5_canonical(e5_sizes));
    }
    if want("e6") {
        print!("{}", exp::e6_restructure(e6_sizes));
    }
    if want("e7") {
        let e7_sizes: &[usize] = if quick {
            &[1_000, 10_000]
        } else {
            &[1_000, 10_000, 100_000]
        };
        print!("{}", exp::e7_witness_ablation(e7_sizes));
    }
    if want("e8") {
        let e8_sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
        print!("{}", exp::e8_parallel_load(e8_sizes, &[1, 2, 4, 8]));
    }
    if want("e9") {
        let e9_sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
        print!("{}", exp::e9_column_store(e9_sizes));
    }
    if want("e10") {
        let n = if quick { 10_000 } else { 100_000 };
        print!("{}", exp::e10_parallel_ops(n, &[1, 2, 4, 8]));
    }
    if want("e11") {
        let n = if quick { 10_000 } else { 50_000 };
        print!("{}", exp::e11_sharded_pool(n, &[1, 2, 4, 8], 4));
    }
    let mut json_entries = Vec::new();
    if want("e12") {
        let (n, iters) = if quick { (1_000, 7) } else { (5_000, 15) };
        let (table, entries) = exp::e12_obs_overhead(n, iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e13") {
        let (n, iters) = if quick { (2_000, 7) } else { (10_000, 15) };
        let (table, entries) = exp::e13_fault_overhead(n, iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e14") {
        let (n, commits) = if quick { (1_000, 100) } else { (5_000, 300) };
        let (table, entries) = exp::e14_txn_snapshot_scaling(n, commits, &[0, 2, 4]);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e15") {
        let (n, iters) = if quick { (5_000, 7) } else { (50_000, 15) };
        let (table, entries) = exp::e15_analysis(n, iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e16") {
        let (n, requests) = if quick { (500, 160) } else { (2_000, 480) };
        let (table, entries) = exp::e16_server_sessions(n, requests, &[1, 4, 16]);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e17") {
        let (n, requests, iters) = if quick {
            (500, 64, 9)
        } else {
            (2_000, 200, 15)
        };
        let (table, entries) = exp::e17_tracing_overhead(n, requests, iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e18") {
        let (n, iters) = if quick { (5_000, 9) } else { (50_000, 15) };
        let (table, entries) = exp::e18_scatter_gather(n, iters, &[1, 2, 4]);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e19") {
        let (n, iters) = if quick { (2_000, 7) } else { (20_000, 11) };
        let (table, entries) = exp::e19_wire_coordinator(n, iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if want("e20") {
        let iters = if quick { 3 } else { 7 };
        let (table, entries) = exp::e20_lint_workspace(iters);
        print!("{table}");
        json_entries.extend(entries);
    }
    if !json_entries.is_empty() {
        let json = report_json::render_json(&json_entries, xst_bench::data::SEED);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {}", path),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
