//! The measured experiment suite (E1–E6 in EXPERIMENTS.md), shared between
//! the `report` binary and the integration checks. Each experiment returns
//! printable rows; wall-clock numbers use `std::time::Instant`, I/O numbers
//! come from the storage layer's counters.

use crate::data;
use crate::table::TableBuilder;
use std::time::Instant;
use xst_core::ops::{sigma_domain, sigma_restrict, sigma_restrict_naive, Scope};
use xst_core::process::Process;
use xst_core::{ExtendedSet, Value};
use xst_query::{eval_counted, Bindings, Expr, Optimizer};
use xst_storage::{
    restructure_records, restructure_set, BufferPool, Index, RecordEngine, Restructuring,
    SetEngine, Storage,
};

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// E1 — set processing vs record processing: select / project / join
/// wall-clock across cardinalities. Prints one row per (op, n).
pub fn e1_set_vs_record(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E1  set processing vs record processing (ms, lower is better)",
        &[
            "op",
            "rows",
            "record engine",
            "set engine (load)",
            "set engine (op)",
            "agree",
        ],
    );
    for &n in sizes {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let supplies = data::supplies_table(&storage, n, n.max(1));
        let pool = BufferPool::new(storage, 64);
        let rec = RecordEngine::new(&pool);

        let (set_parts, load_ms) = time_ms(|| SetEngine::load(&parts, &pool).unwrap());
        let set_supplies = SetEngine::load(&supplies, &pool).unwrap();

        // Selection (selectivity 1/16).
        let color = Value::Int(7);
        let (r_sel, r_ms) = time_ms(|| rec.select(&parts, "color", &color).unwrap());
        let (s_sel, s_ms) = time_ms(|| set_parts.select("color", &color).unwrap());
        let agree = r_sel == SetEngine::to_records(&s_sel).unwrap();
        t.row(&[
            "select".into(),
            n.to_string(),
            format!("{r_ms:.3}"),
            format!("{load_ms:.3}"),
            format!("{s_ms:.3}"),
            agree.to_string(),
        ]);

        // Projection (distinct colors).
        let (r_proj, r_ms) = time_ms(|| rec.project(&parts, &["color"]).unwrap());
        let (s_proj, s_ms) = time_ms(|| set_parts.project(&["color"]).unwrap());
        let agree = r_proj == SetEngine::to_records(&s_proj).unwrap();
        t.row(&[
            "project".into(),
            n.to_string(),
            format!("{r_ms:.3}"),
            String::from("-"),
            format!("{s_ms:.3}"),
            agree.to_string(),
        ]);

        // Join supplies ⋈ parts on pid/id.
        let (r_join, r_ms) = time_ms(|| rec.join(&supplies, &parts, "pid", "id").unwrap());
        let (s_join, s_ms) = time_ms(|| set_supplies.join(&set_parts, "pid", "id").unwrap());
        let agree = r_join == SetEngine::to_records(&s_join).unwrap();
        t.row(&[
            "join".into(),
            n.to_string(),
            format!("{r_ms:.3}"),
            String::from("-"),
            format!("{s_ms:.3}"),
            agree.to_string(),
        ]);
    }
    t.finish(
        "record engine re-scans and re-sorts per query; the set engine pays one \
              canonicalizing load, then answers with linear merges over canonical form.",
    )
}

/// E2 — composition fusion: an s-stage application pipeline evaluated
/// naively vs fused by the Theorem-11.2 rewrite.
pub fn e2_composition(stages_list: &[usize], n: usize, batch: usize) -> String {
    let mut t = TableBuilder::new(
        "E2  composition fusion (Theorem 11.2)",
        &[
            "stages",
            "naive ms",
            "fused ms",
            "fuse-time ms",
            "naive intermediates",
            "fused intermediates",
            "agree",
        ],
    );
    for &stages in stages_list {
        let relations: Vec<ExtendedSet> = (0..stages).map(|s| data::stage_relation(n, s)).collect();
        let inputs = data::stage_inputs(n, batch);
        let mut env = Bindings::new();
        env.insert("x".into(), inputs);
        let mut expr = Expr::table("x");
        for r in &relations {
            expr = Expr::lit(r.clone()).image(expr, Scope::pairs());
        }
        let ((naive_result, naive_stats), naive_ms) =
            time_ms(|| eval_counted(&expr, &env).unwrap());
        let ((optimized, _trace), fuse_ms) = time_ms(|| Optimizer::new().optimize(&expr));
        let ((fused_result, fused_stats), fused_ms) =
            time_ms(|| eval_counted(&optimized, &env).unwrap());
        t.row(&[
            stages.to_string(),
            format!("{naive_ms:.3}"),
            format!("{fused_ms:.3}"),
            format!("{fuse_ms:.3}"),
            naive_stats.intermediate_members.to_string(),
            fused_stats.intermediate_members.to_string(),
            (naive_result == fused_result).to_string(),
        ]);
    }
    t.finish(
        "fusion composes the carriers once (amortizable across batches), then \
              evaluates a single image with zero intermediate materialization.",
    )
}

/// E3 — restriction pushdown: full scan vs index-driven page access;
/// the metric is page transfers from the simulated disk.
pub fn e3_pushdown(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E3  restriction pushdown to storage (page reads, lower is better)",
        &[
            "rows",
            "file pages",
            "scan reads",
            "index reads",
            "speedup",
            "agree",
        ],
    );
    for &n in sizes {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let pool = BufferPool::new(storage, 4);
        let index = Index::build(&parts.file, &pool, 0).unwrap();
        let key = Value::Int((n / 2) as i64);

        pool.clear();
        pool.reset_stats();
        let mut scan_rows = Vec::new();
        parts
            .file
            .scan(&pool, |_, r| {
                if r.get(0) == Some(&key) {
                    scan_rows.push(r);
                }
                Ok(())
            })
            .unwrap();
        let scan_reads = pool.stats().disk_reads;

        pool.clear();
        pool.reset_stats();
        let rids = index.lookup(&key);
        let pages = Index::pages_of(&rids);
        let mut idx_rows = Vec::new();
        parts
            .file
            .scan_pages(&pool, &pages, |_, r| {
                if r.get(0) == Some(&key) {
                    idx_rows.push(r);
                }
                Ok(())
            })
            .unwrap();
        let idx_reads = pool.stats().disk_reads.max(1);

        t.row(&[
            n.to_string(),
            parts.file.page_count().unwrap().to_string(),
            scan_reads.to_string(),
            idx_reads.to_string(),
            format!("{:.1}x", scan_reads as f64 / idx_reads as f64),
            (scan_rows == idx_rows).to_string(),
        ]);
    }
    t.finish(
        "σ-restriction with a known witness needs only the pages the index names; \
              the scan touches every page regardless of selectivity.",
    )
}

/// E4 — image fusion: the fused one-pass image vs the paper-literal
/// restriction-then-domain two-pass pipeline.
pub fn e4_image_fusion(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E4  image: fused one-pass vs literal two-pass (ms)",
        &["members", "two-pass ms", "fused ms", "speedup", "agree"],
    );
    for &n in sizes {
        let r = data::pair_relation(n, (n as i64).max(2));
        let witness_count = (n / 8).max(1);
        let a = ExtendedSet::classical(
            (0..witness_count).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
        );
        let scope = Scope::pairs();
        let (two, two_ms) =
            time_ms(|| sigma_domain(&sigma_restrict(&r, &scope.sigma1, &a), &scope.sigma2));
        let (fused, fused_ms) = time_ms(|| xst_core::ops::image(&r, &a, &scope));
        t.row(&[
            n.to_string(),
            format!("{two_ms:.3}"),
            format!("{fused_ms:.3}"),
            format!("{:.2}x", two_ms / fused_ms.max(1e-9)),
            (two == fused).to_string(),
        ]);
    }
    t.finish(
        "Consequence C.1(f) guarantees the plans agree; fusing avoids building and \
              re-canonicalizing the intermediate restriction.",
    )
}

/// E5 — canonicalization and membership cost vs set size.
pub fn e5_canonical(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E5  canonical form costs",
        &[
            "members",
            "canonicalize ms",
            "clone ms",
            "member test µs",
            "union ms",
        ],
    );
    for &n in sizes {
        let (s, build_ms) = time_ms(|| data::scoped_set(n));
        let (s2, clone_ms) = time_ms(|| s.clone());
        let probe_e = Value::Int((n / 2) as i64);
        let probe_s = Value::Int(3);
        let (_, member_ms) = time_ms(|| {
            for _ in 0..1000 {
                std::hint::black_box(s.contains(&probe_e, &probe_s));
            }
        });
        let other = data::scoped_set(n / 2 + 1);
        let (_, union_ms) = time_ms(|| xst_core::ops::union(&s, &other));
        drop(s2);
        t.row(&[
            n.to_string(),
            format!("{build_ms:.3}"),
            format!("{clone_ms:.4}"),
            format!("{:.3}", member_ms),
            format!("{union_ms:.3}"),
        ]);
    }
    t.finish(
        "clone is O(1) (shared Arc), membership is a binary search, union is a \
              linear merge — the canonical representation is what the set engine amortizes.",
    )
}

/// E6 — dynamic restructuring: re-scope of the identity vs record rewrite.
pub fn e6_restructure(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E6  dynamic restructuring (column permutation)",
        &[
            "rows",
            "record ms",
            "record page writes",
            "set ms",
            "set page writes",
            "agree",
        ],
    );
    for &n in sizes {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let pool = BufferPool::new(storage.clone(), 64);
        let spec = Restructuring::new(
            &parts.schema,
            [("color", "color"), ("qty", "qty"), ("id", "id")],
        )
        .unwrap();
        let engine = SetEngine::load(&parts, &pool).unwrap();

        storage.reset_stats();
        let (rec_table, rec_ms) =
            time_ms(|| restructure_records(&parts, &pool, &storage, &spec).unwrap());
        let rec_writes = storage.stats().disk_writes;

        storage.reset_stats();
        let (set_result, set_ms) = time_ms(|| restructure_set(engine.identity(), &spec));
        let set_writes = storage.stats().disk_writes;

        let mut rec_rows = rec_table.file.read_all(&pool).unwrap();
        rec_rows.sort();
        rec_rows.dedup();
        let agree = rec_rows == SetEngine::to_records(&set_result).unwrap();
        t.row(&[
            n.to_string(),
            format!("{rec_ms:.3}"),
            rec_writes.to_string(),
            format!("{set_ms:.3}"),
            set_writes.to_string(),
            agree.to_string(),
        ]);
    }
    t.finish(
        "the set discipline restructures by re-scoping the identity — zero storage \
              traffic; the record discipline rewrites every page.",
    )
}

/// F-class summary: re-run the formal artifacts and report pass/fail, so
/// the report shows the whole reproduction in one place.
pub fn f_formal_artifacts() -> String {
    let mut t = TableBuilder::new(
        "F   formal artifacts (exact reproduction)",
        &["artifact", "status"],
    );
    let mut check = |name: &str, ok: bool| {
        t.row(&[name.into(), if ok { "ok".into() } else { "FAILED".into() }]);
    };

    // F1: Example 8.1.
    let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
    check(
        "F1 Ex 8.1 function & non-functional inverse",
        f.is_function() && !f.inverse().is_function(),
    );
    // F4: Appendix B generation of all four unary maps.
    let carrier = ExtendedSet::classical([
        Value::Set(ExtendedSet::tuple(["a", "a", "a", "b", "b"])),
        Value::Set(ExtendedSet::tuple(["b", "b", "a", "a", "b"])),
    ]);
    let f_sigma = Process::new(carrier.clone(), Scope::pairs());
    let f_omega = Process::new(
        carrier,
        Scope::new(
            ExtendedSet::tuple([1i64]),
            ExtendedSet::tuple([1i64, 3, 4, 5, 2]),
        ),
    );
    let g2 = Process::from_pairs([("a", "a"), ("b", "a")]);
    let g3 = Process::from_pairs([("a", "b"), ("b", "a")]);
    let b = f_omega.apply_to_process(&f_sigma);
    let c = f_omega
        .apply_to_process(&f_omega)
        .apply_to_process(&f_sigma);
    check(
        "F4 App B self-application (g2, g3 generated)",
        b.equivalent(&g2) && c.equivalent(&g3),
    );
    // F5: interpretation counts.
    use xst_core::process::interpretation_count;
    check(
        "F5 interpretation counts 2/5/14/42",
        interpretation_count(2) == 2
            && interpretation_count(3) == 5
            && interpretation_count(4) == 14
            && interpretation_count(5) == 42,
    );
    // F7: composition law spot check.
    let g = Process::from_pairs([("x", "1"), ("y", "2")]);
    let h = Process::compose(&g, &f).unwrap();
    let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple(["a"]))]);
    check(
        "F7 Thm 11.2 composition law",
        h.apply(&input) == g.apply(&f.apply(&input)),
    );
    // F9: lattice counts.
    use xst_core::spaces::{basic_spaces, refined_spaces};
    check(
        "F9 App D/E lattice 16/8 and 29/12",
        basic_spaces().len() == 16
            && basic_spaces()
                .iter()
                .filter(|s| s.is_function_space())
                .count()
                == 8
            && refined_spaces().len() == 29
            && refined_spaces()
                .iter()
                .filter(|s| s.is_function_space())
                .count()
                == 12,
    );
    t.finish(
        "full coverage of F1–F9 lives in the test suite (cargo test --workspace); \
              this table re-checks headline artifacts at report time.",
    )
}

/// E7 — ablation: paper-literal quadratic witness matching vs the
/// partitioned, size-adaptive witness structure.
pub fn e7_witness_ablation(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E7  ablation: witness matching in σ-restriction (ms)",
        &[
            "members",
            "witnesses",
            "naive ms",
            "adaptive ms",
            "speedup",
            "agree",
        ],
    );
    for &n in sizes {
        let r = data::pair_relation(n, (n as i64).max(2));
        let witness_count = (n / 8).max(1);
        let a = ExtendedSet::classical(
            (0..witness_count).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
        );
        let sigma1 = ExtendedSet::tuple([Value::Int(1)]);
        let (naive, naive_ms) = time_ms(|| sigma_restrict_naive(&r, &sigma1, &a));
        let (adaptive, adaptive_ms) = time_ms(|| sigma_restrict(&r, &sigma1, &a));
        t.row(&[
            n.to_string(),
            witness_count.to_string(),
            format!("{naive_ms:.3}"),
            format!("{adaptive_ms:.3}"),
            format!("{:.1}x", naive_ms / adaptive_ms.max(1e-9)),
            (naive == adaptive).to_string(),
        ]);
    }
    t.finish(
        "the naive form is Definition 7.6 evaluated verbatim; the adaptive form \
              merges singleton witnesses and probes size-adaptively — same result set.",
    )
}

/// E8 — parallel identity loading: building the canonical set identity of
/// a stored file with 1..k worker threads over disjoint page ranges.
pub fn e8_parallel_load(sizes: &[usize], threads: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E8  parallel identity load (ms)",
        &["rows", "threads", "load ms", "speedup vs 1", "agree"],
    );
    for &n in sizes {
        let storage = Storage::new();
        let parts = data::parts_table(&storage, n, 16);
        let pool = BufferPool::new(storage, 64);
        let baseline = SetEngine::load(&parts, &pool).unwrap();
        let mut base_ms = 0.0;
        for &k in threads {
            let (identity, ms) =
                time_ms(|| xst_storage::load_identity_parallel(&parts.file, k).unwrap());
            if k == 1 {
                base_ms = ms;
            }
            t.row(&[
                n.to_string(),
                k.to_string(),
                format!("{ms:.3}"),
                if base_ms > 0.0 {
                    format!("{:.2}x", base_ms / ms)
                } else {
                    "-".into()
                },
                (&identity == baseline.identity()).to_string(),
            ]);
        }
    }
    t.finish(
        "canonicalization commutes with union, so page ranges canonicalize \
              independently and merge; the merge is the sequential tail.",
    )
}

/// E10 — parallel set-operation kernels: wall-clock vs worker threads,
/// every result checked member-exact against the sequential oracle. One
/// thread runs the sequential kernel itself and is the speedup baseline.
pub fn e10_parallel_ops(n: usize, threads: &[usize]) -> String {
    use xst_core::ops::{
        image, intersection, par_image, par_intersection, par_relative_product, par_sigma_restrict,
        par_union, relative_product, union, Parallelism,
    };
    let mut t = TableBuilder::new(
        "E10 parallel set-operation kernels (ms, oracle = sequential kernel)",
        &["op", "members", "threads", "ms", "speedup vs 1", "agree"],
    );

    let r = data::pair_relation(n, (n as i64).max(2));
    let a = ExtendedSet::classical(
        (0..(n / 8).max(1)).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
    );
    let scope = Scope::pairs();
    let s1 = data::scoped_set(n);
    let s2 = data::scoped_set(n + n / 3 + 1);
    // §10 recipe (1): compose pair relations end to end.
    let sigma = Scope::new(
        ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
        ExtendedSet::from_pairs([(Value::Int(2), Value::Int(1))]),
    );
    let omega = Scope::new(
        ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
        ExtendedSet::from_pairs([(Value::Int(2), Value::Int(2))]),
    );
    let g_rel = data::pair_relation(n, (n as i64).max(2));

    type Kernel<'a> = Box<dyn Fn(&Parallelism) -> ExtendedSet + 'a>;
    let ops: Vec<(&str, ExtendedSet, Kernel)> = vec![
        (
            "restrict",
            sigma_restrict(&r, &scope.sigma1, &a),
            Box::new(|p: &Parallelism| par_sigma_restrict(&r, &scope.sigma1, &a, p)),
        ),
        (
            "image",
            image(&r, &a, &scope),
            Box::new(|p: &Parallelism| par_image(&r, &a, &scope, p)),
        ),
        (
            "union",
            union(&s1, &s2),
            Box::new(|p: &Parallelism| par_union(&s1, &s2, p)),
        ),
        (
            "intersect",
            intersection(&s1, &s2),
            Box::new(|p: &Parallelism| par_intersection(&s1, &s2, p)),
        ),
        (
            "rel_product",
            relative_product(&r, &sigma, &g_rel, &omega),
            Box::new(|p: &Parallelism| par_relative_product(&r, &sigma, &g_rel, &omega, p)),
        ),
    ];

    // Best-of-k timing: on an oversubscribed host a spawned worker can lose
    // a scheduler timeslice, so single-shot numbers are noise-dominated.
    let reps = 5;
    for (name, oracle, kernel) in &ops {
        let mut base_ms = 0.0;
        for &k in threads {
            // Threshold 1 so the table measures the kernels, not the policy.
            let par = Parallelism::new(k).with_threshold(1);
            let mut ms = f64::MAX;
            let mut got = None;
            for _ in 0..reps {
                let (out, one) = time_ms(|| kernel(&par));
                ms = ms.min(one);
                got = Some(out);
            }
            if k == 1 {
                base_ms = ms;
            }
            t.row(&[
                (*name).into(),
                n.to_string(),
                k.to_string(),
                format!("{ms:.3}"),
                if base_ms > 0.0 {
                    format!("{:.2}x", base_ms / ms)
                } else {
                    "-".into()
                },
                (got.as_ref() == Some(oracle)).to_string(),
            ]);
        }
    }
    t.finish(
        "each kernel partitions work so per-chunk sequential results merge \
              exactly; agreement with the sequential oracle is checked per row. \
              Speedup scales with physical cores: chunk count = thread count and \
              chunks share no state, so a 1-CPU host pins every row near 1.00x.",
    )
}

/// E11 — sharded buffer pool: the same hot read workload against pools
/// with 1..k shards; sharding splits the lock so concurrent readers stop
/// serializing on a single LRU mutex.
pub fn e11_sharded_pool(n: usize, shard_counts: &[usize], workers: usize) -> String {
    let mut t = TableBuilder::new(
        "E11 sharded buffer pool under concurrent reads",
        &[
            "rows",
            "pages",
            "shards",
            "workers",
            "ms",
            "hits",
            "misses",
            "hit rate",
            "per-shard hits",
        ],
    );
    let storage = Storage::new();
    let parts = data::parts_table(&storage, n, 16);
    let file = parts.file.file_id();
    let pages = parts.file.page_count().unwrap();
    let rounds = 64usize;
    for &shards in shard_counts {
        // 2x headroom: PageId hashing spreads pages unevenly across shards,
        // and a pool sized exactly to the working set would evict inside the
        // overloaded shards. Provisioning headroom isolates what the table
        // is about — lock sharding, not capacity.
        let pool = BufferPool::with_shards(storage.clone(), (pages * 2).max(shards), shards);
        // Warm every page once so the measured phase is pure cache traffic.
        for p in 0..pages {
            pool.get(xst_storage::PageId { file, page: p }).unwrap();
        }
        pool.reset_stats();
        let (_, ms) = time_ms(|| {
            std::thread::scope(|s| {
                for w in 0..workers {
                    let pool = &pool;
                    s.spawn(move || {
                        // Per-worker stride so threads touch shards unevenly.
                        for i in 0..rounds * pages {
                            let page = (i * (w + 1) + w) % pages;
                            pool.get(xst_storage::PageId { file, page }).unwrap();
                        }
                    });
                }
            });
        });
        let stats = pool.stats();
        let total = stats.pool_hits + stats.pool_misses;
        let per_shard: Vec<u64> = pool.shard_stats().iter().map(|&(h, _)| h).collect();
        let (lo, hi) = (
            per_shard.iter().min().copied().unwrap_or(0),
            per_shard.iter().max().copied().unwrap_or(0),
        );
        t.row(&[
            n.to_string(),
            pages.to_string(),
            shards.to_string(),
            workers.to_string(),
            format!("{ms:.3}"),
            stats.pool_hits.to_string(),
            stats.pool_misses.to_string(),
            format!(
                "{:.1}%",
                100.0 * stats.pool_hits as f64 / total.max(1) as f64
            ),
            format!("{lo}..{hi}"),
        ]);
    }
    t.finish(
        "hit rate stays ~100% at every shard count — sharding splits the LRU \
              lock, it does not add capacity; per-shard hit spread shows the \
              PageId hash balancing load across shards.",
    )
}

/// E9 — representation economics: the same relation stored row-wise vs
/// column-wise; one-column analytics read a fraction of the pages.
pub fn e9_column_store(sizes: &[usize]) -> String {
    let mut t = TableBuilder::new(
        "E9  row store vs column store (page reads for a 1-of-4-column scan)",
        &[
            "rows",
            "row pages",
            "col pages (total)",
            "row reads",
            "col reads",
            "ratio",
            "agree",
        ],
    );
    for &n in sizes {
        let storage = Storage::new();
        let rows: Vec<xst_storage::Record> = (0..n as i64)
            .map(|i| {
                xst_storage::Record::new([
                    Value::Int(i),
                    Value::str(format!("name-{i}")),
                    Value::Int(i % 1000),
                    Value::Int(i % 7),
                ])
            })
            .collect();
        let schema = xst_storage::Schema::new(["id", "name", "qty", "grp"]);
        let mut rt = xst_storage::Table::create(&storage, schema.clone());
        rt.load(&rows).unwrap();
        let mut ct = xst_storage::ColumnTable::create(&storage, schema);
        ct.load(&rows).unwrap();
        let pool = BufferPool::new(storage, 4);

        pool.clear();
        pool.reset_stats();
        let mut row_sum = 0i64;
        rt.file
            .scan(&pool, |_, r| {
                if let Some(Value::Int(q)) = r.get(2) {
                    row_sum += q;
                }
                Ok(())
            })
            .unwrap();
        let row_reads = pool.stats().disk_reads;

        pool.clear();
        pool.reset_stats();
        let mut col_sum = 0i64;
        ct.scan_column(&pool, "qty", |_, v| {
            if let Value::Int(q) = v {
                col_sum += q;
            }
            Ok(())
        })
        .unwrap();
        let col_reads = pool.stats().disk_reads;

        t.row(&[
            n.to_string(),
            rt.file.page_count().unwrap().to_string(),
            ct.page_count().unwrap().to_string(),
            row_reads.to_string(),
            col_reads.to_string(),
            format!("{:.1}x", row_reads as f64 / col_reads.max(1) as f64),
            (row_sum == col_sum).to_string(),
        ]);
    }
    t.finish(
        "both layouts share one set identity (asserted in the test suite); \
              the column layout reads only the touched column's pages.",
    )
}

/// E12 — observability overhead: the E1-style workload (canonicalizing
/// load through the buffer pool, then a query-layer evaluation), timed
/// with the collector off and on.
///
/// An uninstrumented build cannot be compared in-process, so the disabled
/// cost is bounded honestly: two *interleaved* disabled runs (A and B) are
/// timed alternately — their ratio is the measurement noise floor, and the
/// disabled fast path (one relaxed atomic load per site) sits inside it.
/// The enabled/disabled ratio then prices what full collection costs.
/// Returns the printable table plus the machine-readable entries written
/// to BENCH_PR2.json.
pub fn e12_obs_overhead(n: usize, iters: usize) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use xst_core::ops::Parallelism;
    use xst_query::eval_parallel;

    let storage = Storage::new();
    let parts = data::parts_table(&storage, n, 16);
    let pool = BufferPool::new(storage, 64);
    let s1 = data::scoped_set(n);
    let s2 = data::scoped_set(n + n / 3 + 1);
    let mut env = Bindings::new();
    env.insert("s1".into(), s1);
    env.insert("s2".into(), s2);
    let expr = Expr::table("s1")
        .union(Expr::table("s2"))
        .intersect(Expr::table("s1"));
    let par = Parallelism::sequential();

    // One iteration touches every instrumented layer: buffer-pool gets and
    // page reads (the load), then evaluator spans per operator.
    let workload = || {
        let engine = SetEngine::load(&parts, &pool).unwrap();
        let (out, _) = eval_parallel(&expr, &env, &par).unwrap();
        engine.identity().card() + out.card()
    };

    let time_ns = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let out = f();
        std::hint::black_box(out);
        start.elapsed().as_nanos() as u64
    };
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };

    let was_enabled = xst_obs::enabled();
    // Interleaved disabled runs: A and B samples alternate, so drift or a
    // lost timeslice hits both series equally.
    xst_obs::disable();
    workload(); // warm the pool and allocators outside the measured runs
    let (mut off_a, mut off_b) = (Vec::new(), Vec::new());
    for _ in 0..iters {
        off_a.push(time_ns(&workload));
        off_b.push(time_ns(&workload));
    }
    xst_obs::enable();
    let mut on = Vec::new();
    for _ in 0..iters {
        on.push(time_ns(&workload));
        // Drain what the run recorded, as a live scraper would.
        xst_obs::collector().take_spans();
    }
    if !was_enabled {
        xst_obs::disable();
    }

    let (a, b, e) = (median(off_a), median(off_b), median(on));
    let noise = b as f64 / a as f64;
    let overhead = e as f64 / a.min(b) as f64;

    let mut t = TableBuilder::new(
        "E12 observability overhead (collector off vs on, median of iters)",
        &["phase", "rows", "iters", "median ms", "vs off (A)"],
    );
    for (phase, ns, ratio) in [
        ("collector off (A)", a, 1.0),
        ("collector off (B)", b, noise),
        ("collector on", e, e as f64 / a as f64),
    ] {
        t.row(&[
            phase.into(),
            n.to_string(),
            iters.to_string(),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{ratio:.3}x"),
        ]);
    }
    let table = t.finish(
        "off(B)/off(A) is the noise floor of two identical disabled runs — \
              the disabled collector costs one relaxed atomic load per site and \
              hides inside it; on/off prices spans + metrics recording.",
    );

    let meta = vec![
        ("rows", n.to_string()),
        ("iters", iters.to_string()),
        ("workload", "setengine-load + query-eval".to_string()),
    ];
    let entries = vec![
        BenchEntry::ns("e12_workload_collector_off_a", a, &meta),
        BenchEntry::ns("e12_workload_collector_off_b", b, &meta),
        BenchEntry::ns("e12_workload_collector_on", e, &meta),
        BenchEntry::ratio(
            "e12_disabled_noise_floor",
            noise,
            &[(
                "note",
                "two interleaved collector-off runs; the disabled fast path \
                 (one atomic load per site) is bounded by this ratio"
                    .to_string(),
            )],
        ),
        BenchEntry::ratio(
            "e12_enabled_overhead",
            overhead,
            &[(
                "note",
                "collector on vs best collector-off median".to_string(),
            )],
        ),
    ];
    (table, entries)
}

/// E13 — fault-injection and group-commit overhead. The crash-safety
/// layer must be free when idle: an *armed* fault plan that never fires
/// still numbers every I/O site (one atomic increment + schedule check per
/// op), and the acceptance bar is the same as E12's — armed-vs-off within
/// 1.05× once the interleaved noise floor is accounted for. The same
/// workload also prices group commit: one WAL flush per 32-record batch
/// versus one flush per record.
pub fn e13_fault_overhead(n: usize, iters: usize) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use xst_storage::{FaultKind, FaultPlan, FaultSchedule, LoggedTable, Record, Schema, Wal};

    let records: Vec<Record> = (0..n)
        .map(|i| Record::new([Value::Int(i as i64), Value::str(format!("row-{i:06}"))]))
        .collect();
    let schema = Schema::new(["id", "name"]);

    const BATCH: usize = 32;
    // One iteration: batched WAL-logged appends, a checkpoint, and a full
    // read-back — every fault site class (write, sync, read) on the path.
    let run_batched = |plan: Option<&FaultPlan>| -> usize {
        let storage = Storage::new();
        let wal = Wal::new();
        if let Some(p) = plan {
            storage.install_faults(p);
            wal.install_faults(p);
        }
        let mut t = LoggedTable::create(&storage, schema.clone(), wal);
        for chunk in records.chunks(BATCH) {
            t.append_batch(chunk).unwrap();
        }
        t.checkpoint().unwrap();
        let pool = BufferPool::new(storage, 64);
        t.table.file.read_all(&pool).unwrap().len()
    };
    // The ungrouped baseline: identical records, one flush per append.
    let run_per_append = || -> usize {
        let storage = Storage::new();
        let mut t = LoggedTable::create(&storage, schema.clone(), Wal::new());
        for r in &records {
            t.append(r).unwrap();
        }
        t.checkpoint().unwrap();
        let pool = BufferPool::new(storage, 64);
        t.table.file.read_all(&pool).unwrap().len()
    };

    let time_ns = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let out = f();
        std::hint::black_box(out);
        start.elapsed().as_nanos() as u64
    };
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };

    // Armed but unreachable: the schedule points past every site the
    // workload can produce, so only the per-op check itself is priced.
    let plan = FaultPlan::new(FaultSchedule::AtSite(u64::MAX), FaultKind::Transient);

    let was_enabled = xst_obs::enabled();
    xst_obs::disable(); // isolate fault-check cost from collector cost (E12's job)
    run_batched(None); // warm allocators outside the measured runs
    let (mut off_a, mut off_b, mut armed) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..iters {
        // Interleaved: drift or a lost timeslice hits every series equally.
        off_a.push(time_ns(&|| run_batched(None)));
        off_b.push(time_ns(&|| run_batched(None)));
        armed.push(time_ns(&|| run_batched(Some(&plan))));
    }
    let mut ungrouped = Vec::new();
    for _ in 0..iters {
        ungrouped.push(time_ns(&run_per_append));
    }
    if was_enabled {
        xst_obs::enable();
    }
    assert_eq!(plan.injected_count(), 0, "the armed plan must never fire");

    let (a, b, e, u) = (
        median(off_a),
        median(off_b),
        median(armed),
        median(ungrouped),
    );
    let batched = a.min(b);
    let noise = b as f64 / a as f64;
    let overhead = e as f64 / batched as f64;
    let speedup = u as f64 / batched as f64;

    // Flush counts are exact by construction: one flush per append_batch
    // call (group commit), one per single append, plus the checkpoint mark.
    let flushes_batched = records.chunks(BATCH).count() + 1;
    let flushes_ungrouped = records.len() + 1;

    let mut t = TableBuilder::new(
        "E13 fault-injection overhead + group commit (median of iters)",
        &[
            "phase",
            "rows",
            "iters",
            "wal flushes",
            "median ms",
            "vs no-plan (A)",
        ],
    );
    for (phase, flushes, ns, ratio) in [
        ("no plan (A), batched", flushes_batched, a, 1.0),
        ("no plan (B), batched", flushes_batched, b, noise),
        (
            "armed plan, batched",
            flushes_batched,
            e,
            e as f64 / a as f64,
        ),
        (
            "no plan, per-append",
            flushes_ungrouped,
            u,
            u as f64 / a as f64,
        ),
    ] {
        t.row(&[
            phase.into(),
            n.to_string(),
            iters.to_string(),
            flushes.to_string(),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{ratio:.3}x"),
        ]);
    }
    let table = t.finish(
        "no-plan(B)/no-plan(A) is the interleaved noise floor; armed/no-plan \
         prices the per-site fault check (bar: within 1.05x once past the \
         floor). Group commit's wall-clock is near parity on this RAM-backed \
         log — its saving is the flush column: each flush is the \
         fsync-equivalent commit point, the expensive op on real media.",
    );

    let meta = vec![
        ("rows", n.to_string()),
        ("iters", iters.to_string()),
        ("batch", BATCH.to_string()),
        (
            "workload",
            "loggedtable-append + checkpoint + read-back".to_string(),
        ),
    ];
    let entries = vec![
        BenchEntry::ns("e13_workload_no_plan_a", a, &meta),
        BenchEntry::ns("e13_workload_no_plan_b", b, &meta),
        BenchEntry::ns("e13_workload_armed_plan", e, &meta),
        BenchEntry::ns("e13_workload_per_append", u, &meta),
        BenchEntry::ratio(
            "e13_no_plan_noise_floor",
            noise,
            &[(
                "note",
                "two interleaved no-plan runs; site numbering is bounded by this ratio".to_string(),
            )],
        ),
        BenchEntry::ratio(
            "e13_armed_overhead",
            overhead,
            &[(
                "note",
                "armed-but-never-firing plan vs best no-plan median (bar: 1.05)".to_string(),
            )],
        ),
        BenchEntry::ratio(
            "e13_group_commit_speedup",
            speedup,
            &[(
                "note",
                "one flush per record vs one flush per 32-record batch \
                 (wall-clock; the flush-count ratio below is the real saving)"
                    .to_string(),
            )],
        ),
        BenchEntry::ratio(
            "e13_group_commit_flush_ratio",
            flushes_ungrouped as f64 / flushes_batched as f64,
            &[(
                "note",
                "fsync-equivalent flushes, per-append vs batched".to_string(),
            )],
        ),
    ];
    (table, entries)
}

/// E14 — MVCC snapshot scaling and conflict pricing. Two claims to
/// measure:
///
/// 1. **Readers never block the writer.** A transaction's first read pins
///    an `Arc` of a committed identity; every later scan runs on that Arc,
///    entirely outside the manager lock. So long-lived readers — the case
///    a lock-based design cannot serve without stalling writes — should
///    cost the writer ~nothing per commit. Each reader also asserts its
///    snapshot never moves while hundreds of commits land around it.
/// 2. **First-committer-wins aborts track contention, not load.** Two
///    overlapping writers conflict exactly when they touch the same
///    record, so the abort rate over a key pool of size `p` should be
///    ~`1/p` — near-certain on a hot pool of 2, noise on a cold pool
///    of 64.
pub fn e14_txn_snapshot_scaling(
    n: usize,
    commits: usize,
    reader_counts: &[usize],
) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;
    use xst_storage::{Record, Schema, TxnManager, Wal};

    let schema = || Schema::new(["k", "v"]);
    let row = |k: i64, v: i64| Record::new([Value::Int(k), Value::Int(v)]);

    // One phase per reader count: seed a fresh table, then time `commits`
    // single-row insert transactions while `r` companion threads run.
    // `snapshot_readers = false` is the control: the companions burn CPU
    // without touching the transaction layer at all, pricing pure
    // scheduler/memory contention (one-core boxes timeslice everything).
    // The MVCC claim is the *gap* between the two, not the raw slowdown.
    let run_phase = |readers: usize, snapshot_readers: bool| -> (u64, usize) {
        let mgr = TxnManager::new(&Storage::new(), Wal::new());
        mgr.create_table("t", schema()).unwrap();
        let seed_rows: Vec<Record> = (0..n as i64).map(|k| row(k, k)).collect();
        mgr.autocommit_insert("t", &seed_rows).unwrap();

        let stop = StdArc::new(AtomicBool::new(false));
        let scans = StdArc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let (mgr, stop, scans) = (mgr.clone(), StdArc::clone(&stop), StdArc::clone(&scans));
                std::thread::spawn(move || {
                    if !snapshot_readers {
                        // Control companion: equivalent CPU pressure, zero
                        // transaction-layer interaction.
                        let mut x = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            for _ in 0..4096 {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            }
                            std::hint::black_box(x);
                        }
                        return;
                    }
                    // One long-lived transaction per reader — the case a
                    // lock-based design cannot serve without stalling the
                    // writer. The first read pins the snapshot; every
                    // later scan runs on the pinned Arc, outside the
                    // manager lock, and must see the identical state no
                    // matter how many commits land meanwhile.
                    let mut txn = mgr.begin();
                    let first = txn.scan("t").unwrap();
                    assert!(first.len() >= n, "snapshot below the seeded state");
                    while !stop.load(Ordering::Relaxed) {
                        let again = txn.scan("t").unwrap();
                        assert_eq!(first.len(), again.len(), "snapshot moved inside a txn");
                        scans.fetch_add(1, Ordering::Relaxed);
                    }
                    txn.commit().unwrap();
                })
            })
            .collect();

        let start = Instant::now();
        for i in 0..commits {
            let mut txn = mgr.begin();
            txn.insert("t", row((n + i) as i64, i as i64)).unwrap();
            txn.commit().unwrap();
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            mgr.begin().engine("t").unwrap().identity().card(),
            n + commits,
            "every writer commit landed"
        );
        (elapsed / commits as u64, scans.load(Ordering::Relaxed))
    };

    // (readers, per-commit with snapshot readers, scans, per-commit with
    // inert spin threads).
    let phases: Vec<(usize, u64, usize, u64)> = reader_counts
        .iter()
        .map(|&r| {
            let (per_commit, scans) = run_phase(r, true);
            let (control, _) = if r == 0 {
                (per_commit, 0)
            } else {
                run_phase(r, false)
            };
            (r, per_commit, scans, control)
        })
        .collect();

    // Conflict pricing: pairs of overlapping writers over a key pool.
    // Both write a *fixed* record for their key, so the pair conflicts
    // exactly when the deterministic LCG hands them the same key.
    let abort_rate = |pool: u64| -> f64 {
        let mgr = TxnManager::new(&Storage::new(), Wal::new());
        mgr.create_table("t", schema()).unwrap();
        let mut state = crate::data::SEED ^ pool;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % pool
        };
        let mut aborts = 0usize;
        for _ in 0..commits {
            let (ka, kb) = (next(), next());
            let mut t1 = mgr.begin();
            let mut t2 = mgr.begin();
            t1.insert("t", row(ka as i64, 0)).unwrap();
            t2.insert("t", row(kb as i64, 0)).unwrap();
            t1.commit().unwrap();
            if t2.commit().is_err() {
                aborts += 1;
            }
        }
        aborts as f64 / commits as f64
    };
    let (hot, cold) = (abort_rate(2), abort_rate(64));

    let mut t = TableBuilder::new(
        "E14 MVCC snapshot scaling (writer per-commit vs concurrent readers)",
        &[
            "readers",
            "reader ms",
            "control ms",
            "snapshot scans",
            "vs control",
        ],
    );
    for &(r, per_commit, scans, control) in &phases {
        t.row(&[
            r.to_string(),
            format!("{:.3}", per_commit as f64 / 1e6),
            format!("{:.3}", control as f64 / 1e6),
            scans.to_string(),
            format!("{:.3}x", per_commit as f64 / control as f64),
        ]);
    }
    t.row(&[
        "abort rate".into(),
        format!("pool=2: {hot:.3}"),
        format!("pool=64: {cold:.3}"),
        "pairs of overlapping writers".into(),
        "~1/pool".into(),
    ]);
    let table = t.finish(
        "long-lived readers pin Arc'd snapshots once and scan outside the \
         manager lock; the control replaces them with inert spin threads, \
         so 'vs control' isolates transaction-layer blocking from plain \
         scheduler/memory contention (≈1.0x means snapshot readers cost \
         the writer nothing a busy CPU wouldn't). Every reader asserts its \
         snapshot never moves mid-transaction. First-committer-wins aborts \
         track key contention (~1/pool), not transaction volume.",
    );

    let mut meta = vec![("rows", n.to_string()), ("commits", commits.to_string())];
    let mut entries = Vec::new();
    for &(r, per_commit, scans, control) in &phases {
        meta.push(("readers", r.to_string()));
        entries.push(BenchEntry::ns(
            format!("e14_writer_commit_r{r}"),
            per_commit,
            &meta,
        ));
        meta.pop();
        if r > 0 {
            meta.push(("spin-threads", r.to_string()));
            entries.push(BenchEntry::ns(
                format!("e14_writer_commit_control_r{r}"),
                control,
                &meta,
            ));
            meta.pop();
            entries.push(BenchEntry::ratio(
                format!("e14_reader_scans_per_commit_r{r}"),
                scans as f64 / commits as f64,
                &[(
                    "note",
                    "snapshot reads completed per writer commit".to_string(),
                )],
            ));
        }
    }
    let max = phases.last().unwrap();
    entries.push(BenchEntry::ratio(
        "e14_writer_slowdown_under_readers",
        max.1 as f64 / max.3 as f64,
        &[(
            "note",
            format!(
                "writer per-commit with {} snapshot readers vs {} inert spin \
                 threads; ≈1.0 means the reads add no blocking beyond plain \
                 CPU contention",
                max.0, max.0
            ),
        )],
    ));
    entries.push(BenchEntry::ratio(
        "e14_abort_rate_hot_pool",
        hot,
        &[(
            "note",
            "overlapping writer pairs over a 2-key pool (~0.5 expected)".to_string(),
        )],
    ));
    entries.push(BenchEntry::ratio(
        "e14_abort_rate_cold_pool",
        cold,
        &[(
            "note",
            "overlapping writer pairs over a 64-key pool (~0.016 expected)".to_string(),
        )],
    ));
    (table, entries)
}

/// E15 — static analysis: gate overhead and empty-subplan pruning.
///
/// Part 1 prices the evaluator's analysis gate: the same plan suite runs
/// through `eval_parallel` (which analyzes every plan before executing)
/// and `eval_parallel_unchecked` (identical evaluation, no gate), with
/// samples interleaved as in E12 so drift hits both series equally. The
/// acceptance bar is gated/unchecked ≤ 1.05× — the abstraction degrades
/// to O(1) summaries past its scan cap, so the gate must stay invisible.
///
/// Part 2 prices what the analysis buys: a plan whose `(A ∩ B)` branch is
/// provably empty (classical scopes on one side, scope-1 on the other —
/// disjoint signatures) feeding a union with a live pipeline. Plain
/// `eval` computes the 2n-member intersection; `optimize` + `eval` lets
/// the analyzer prune the branch to `∅` first, and the reported speedup
/// *includes* the optimizer pass that pays for the analysis.
pub fn e15_analysis(n: usize, iters: usize) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use xst_core::ops::Parallelism;
    use xst_query::{eval, eval_parallel, eval_parallel_unchecked};

    let time_ns = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let out = f();
        std::hint::black_box(out);
        start.elapsed().as_nanos() as u64
    };
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };

    // Part 1: the gate on a mixed plan suite over large bound tables.
    let mut env = Bindings::new();
    env.insert("s1".into(), data::scoped_set(n));
    env.insert("s2".into(), data::scoped_set(n + n / 3 + 1));
    env.insert("rel".into(), data::pair_relation(n, n as i64));
    let sigma = ExtendedSet::tuple([Value::Int(1)]);
    let plans: Vec<Expr> = vec![
        Expr::table("s1")
            .union(Expr::table("s2"))
            .intersect(Expr::table("s1")),
        Expr::table("s1").difference(Expr::table("s2")),
        Expr::table("rel").domain(sigma.clone()),
        Expr::table("rel")
            .restrict(sigma, Expr::table("s1"))
            .union(Expr::table("s2").intersect(Expr::table("s2"))),
    ];
    let par = Parallelism::sequential();
    let gated = || {
        plans
            .iter()
            .map(|p| eval_parallel(p, &env, &par).unwrap().0.card())
            .sum::<usize>()
    };
    let unchecked = || {
        plans
            .iter()
            .map(|p| eval_parallel_unchecked(p, &env, &par).unwrap().0.card())
            .sum::<usize>()
    };
    gated(); // warm allocators and the bindings outside the measured runs
    let (mut g, mut u) = (Vec::new(), Vec::new());
    for _ in 0..iters {
        g.push(time_ns(&gated));
        u.push(time_ns(&unchecked));
    }
    let (g, u) = (median(g), median(u));
    let overhead = g as f64 / u as f64;

    // Part 2: a provably-empty intersection — classical members on one
    // side, everything scoped at 1 on the other — united with a pipeline
    // that does real work. Wide records make the deep member comparisons
    // the intersection burns exactly the work signature scanning skips:
    // the scan only reads scopes, never the payload fields.
    let payload = |i: usize| {
        Value::Set(ExtendedSet::tuple([
            Value::Int(i as i64),
            Value::str(format!(
                "warehouse/eu-west/aisle-{:02}/shelf-{i:08}",
                i % 40
            )),
            Value::Int((i * 31) as i64),
            Value::str(format!("palette-{:04}", i % 977)),
        ]))
    };
    let classical = ExtendedSet::classical((0..n).map(payload));
    let scoped = ExtendedSet::from_pairs((0..n).map(|i| (payload(i), Value::Int(1))));
    env.insert("pipe".into(), data::pair_relation(n / 10, n as i64));
    let expr = Expr::lit(classical)
        .intersect(Expr::lit(scoped))
        .union(Expr::table("pipe").domain(ExtendedSet::tuple([Value::Int(1)])));
    let plain = || eval(&expr, &env).unwrap().card();
    let pruned = || {
        let (optimized, _trace) = Optimizer::new().optimize(&expr);
        eval(&optimized, &env).unwrap().card()
    };
    assert_eq!(plain(), pruned(), "pruning changed the result");
    let (mut p, mut o) = (Vec::new(), Vec::new());
    for _ in 0..iters {
        p.push(time_ns(&plain));
        o.push(time_ns(&pruned));
    }
    let (p, o) = (median(p), median(o));
    let speedup = p as f64 / o as f64;

    let mut t = TableBuilder::new(
        "E15 static analysis (gate overhead, empty-subplan pruning)",
        &["phase", "rows", "iters", "median ms", "ratio"],
    );
    for (phase, ns, ratio) in [
        ("eval, no gate", u, 1.0),
        ("eval, gated", g, overhead),
        ("empty ∩ plain eval", p, 1.0),
        ("empty ∩ optimized (incl. optimize)", o, p as f64 / o as f64),
    ] {
        t.row(&[
            phase.into(),
            n.to_string(),
            iters.to_string(),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{ratio:.3}x"),
        ]);
    }
    let table = t.finish(
        "gated/unchecked prices the static-analysis gate on every eval \
         (bar: ≤1.05×; the abstraction degrades to O(1) summaries past \
         its scan cap); the pruning rows show optimize+eval beating plain \
         eval when the analyzer proves a subplan empty and prunes it",
    );

    let meta = vec![("rows", n.to_string()), ("iters", iters.to_string())];
    let entries = vec![
        BenchEntry::ns("e15_eval_unchecked", u, &meta),
        BenchEntry::ns("e15_eval_gated", g, &meta),
        BenchEntry::ratio(
            "e15_gate_overhead",
            overhead,
            &[(
                "note",
                "gated vs unchecked eval medians; bar ≤1.05".to_string(),
            )],
        ),
        BenchEntry::ns("e15_empty_subplan_plain", p, &meta),
        BenchEntry::ns("e15_empty_subplan_pruned", o, &meta),
        BenchEntry::ratio(
            "e15_prune_speedup",
            speedup,
            &[(
                "note",
                "plain eval vs optimize+eval (optimizer time included) on a \
                 provably-empty intersection feeding a union"
                    .to_string(),
            )],
        ),
    ];
    (table, entries)
}

/// E16 — network server: per-request latency and throughput at 1/4/16
/// concurrent sessions, against an in-process baseline.
///
/// One served engine holds a preloaded table; every session evaluates the
/// same one-table plan over the wire, repeatedly, through its own TCP
/// connection. The baseline runs the identical plan through
/// `eval_parallel` in-process on the same bindings, so "wire overhead"
/// prices exactly the protocol round trip (framing, CRC, text codec,
/// session dispatch) and nothing else.
///
/// Read the concurrency rows honestly: this box has ONE CPU, so 4 and 16
/// sessions timeshare a single core and aggregate throughput cannot
/// scale. What the sweep shows is that latency degrades roughly linearly
/// with the session count (fair scheduling, no collapse) and that the
/// thread-per-connection server keeps its tail (p99/p50) bounded while
/// oversubscribed.
pub fn e16_server_sessions(
    n: usize,
    requests: usize,
    session_counts: &[usize],
) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use std::sync::Arc as StdArc;
    use xst_client::Client;
    use xst_core::ops::Parallelism;
    use xst_query::eval_parallel;
    use xst_server::{ServedEngine, Server, ServerConfig};

    let percentile = |sorted: &[u64], p: f64| -> u64 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };

    // The served table: n classical members, written once.
    let engine = StdArc::new(ServedEngine::new());
    engine.ensure_table("t");
    let seed_set = ExtendedSet::classical((0..n as i64).collect::<Vec<_>>());
    engine
        .mgr()
        .autocommit_insert("t", &xst_server::set_to_records(&seed_set))
        .unwrap();
    let mut server = Server::start(
        StdArc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: session_counts.iter().copied().max().unwrap_or(16).max(16),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let expr = Expr::table("t");

    // In-process baseline: identical plan and bindings, no wire.
    let identity = (*engine.mgr().latest_identity("t").unwrap()).clone();
    let mut bindings = Bindings::new();
    bindings.insert("t".to_string(), identity);
    let mut base_lat: Vec<u64> = (0..requests)
        .map(|_| {
            let start = Instant::now();
            let (out, _) = eval_parallel(&expr, &bindings, &Parallelism::sequential()).unwrap();
            std::hint::black_box(out);
            start.elapsed().as_nanos() as u64
        })
        .collect();
    base_lat.sort_unstable();
    let base_p50 = percentile(&base_lat, 0.50);
    let base_p99 = percentile(&base_lat, 0.99);

    // Wire phases: `s` sessions, each issuing `requests / s` evals, so
    // total work is constant across rows.
    let run_phase = |sessions: usize| -> (Vec<u64>, f64) {
        let per_session = requests / sessions;
        let start = Instant::now();
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let addr = addr.clone();
                let expr = expr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr, &format!("bench-{i}")).unwrap();
                    (0..per_session)
                        .map(|_| {
                            let t0 = Instant::now();
                            std::hint::black_box(client.eval(&expr).unwrap());
                            t0.elapsed().as_nanos() as u64
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut lat: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let wall = start.elapsed().as_secs_f64();
        lat.sort_unstable();
        (lat, (per_session * sessions) as f64 / wall)
    };
    let phases: Vec<(usize, Vec<u64>, f64)> = session_counts
        .iter()
        .map(|&s| {
            let (lat, rps) = run_phase(s);
            (s, lat, rps)
        })
        .collect();
    server.stop();

    let mut t = TableBuilder::new(
        "E16 network sessions (eval latency/throughput vs in-process)",
        &["sessions", "p50 ms", "p99 ms", "req/s", "p50 vs in-proc"],
    );
    t.row(&[
        "in-process".into(),
        format!("{:.3}", base_p50 as f64 / 1e6),
        format!("{:.3}", base_p99 as f64 / 1e6),
        "-".into(),
        "1.000x".into(),
    ]);
    for (s, lat, rps) in &phases {
        let p50 = percentile(lat, 0.50);
        t.row(&[
            s.to_string(),
            format!("{:.3}", p50 as f64 / 1e6),
            format!("{:.3}", percentile(lat, 0.99) as f64 / 1e6),
            format!("{rps:.0}"),
            format!("{:.3}x", p50 as f64 / base_p50 as f64),
        ]);
    }
    let table = t.finish(
        "each session is its own TCP connection against one served engine \
         evaluating the same one-table plan; the in-process row runs the \
         identical plan through eval_parallel, so the 1-session gap prices \
         the wire round trip alone. This box has one CPU: multi-session \
         rows timeshare a core, so aggregate req/s holding steady while \
         p50 grows ~linearly with sessions is the healthy outcome, not a \
         scaling failure.",
    );

    let meta = vec![("rows", n.to_string()), ("requests", requests.to_string())];
    let mut entries = vec![
        BenchEntry::ns("e16_inproc_eval_p50", base_p50, &meta),
        BenchEntry::ns("e16_inproc_eval_p99", base_p99, &meta),
    ];
    for (s, lat, rps) in &phases {
        let mut m = meta.clone();
        m.push(("sessions", s.to_string()));
        entries.push(BenchEntry::ns(
            format!("e16_wire_eval_p50_s{s}"),
            percentile(lat, 0.50),
            &m,
        ));
        entries.push(BenchEntry::ns(
            format!("e16_wire_eval_p99_s{s}"),
            percentile(lat, 0.99),
            &m,
        ));
        entries.push(BenchEntry::ratio(
            format!("e16_throughput_rps_s{s}"),
            *rps,
            &[("note", "aggregate eval requests per second".to_string())],
        ));
    }
    if let Some((_, lat, _)) = phases.first() {
        entries.push(BenchEntry::ratio(
            "e16_wire_overhead_p50",
            percentile(lat, 0.50) as f64 / base_p50 as f64,
            &[(
                "note",
                "single-session wire p50 vs in-process p50: the protocol \
                 round trip priced against the same plan"
                    .to_string(),
            )],
        ));
    }
    (table, entries)
}

/// E17 — end-to-end tracing overhead across the wire. The protocol-v2
/// tentpole (a `Traced` wrapper + span stitching + per-request cost
/// records on every request) must be effectively free: with the
/// collector disabled the client sends plain v2 requests and every
/// instrumentation site costs one relaxed atomic load, so the
/// disabled path must sit at the interleaved noise floor; with the
/// collector enabled the full pipeline runs — client root span,
/// context bytes on the wire, server-side adoption, cost scope, and a
/// request-log record per request — and the acceptance bar is 1.05×
/// against the best disabled run.
pub fn e17_tracing_overhead(
    n: usize,
    requests: usize,
    iters: usize,
) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use std::sync::Arc as StdArc;
    use xst_client::Client;
    use xst_server::{ServedEngine, Server, ServerConfig};

    let engine = StdArc::new(ServedEngine::new());
    engine.ensure_table("t");
    let seed_set = ExtendedSet::classical((0..n as i64).collect::<Vec<_>>());
    engine
        .mgr()
        .autocommit_insert("t", &xst_server::set_to_records(&seed_set))
        .unwrap();
    let mut server = Server::start(
        StdArc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr, "bench-e17").unwrap();
    let expr = Expr::table("t");

    // One iteration is a batch of wire evals on a warm connection; the
    // tracing machinery prices itself per request, so the batch keeps
    // scheduler noise small relative to the quantity under test.
    let time_ns = |client: &mut Client| -> u64 {
        let start = Instant::now();
        for _ in 0..requests {
            std::hint::black_box(client.eval(&expr).unwrap());
        }
        start.elapsed().as_nanos() as u64
    };
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };

    let was_enabled = xst_obs::enabled();
    // Fully interleaved sampling: every iteration takes one off-A, one
    // off-B, and one tracing-on batch back to back, so clock drift or a
    // lost timeslice on this single-CPU box hits all three series
    // equally (a trailing on-phase, E12-style, reads warm-up drift as
    // tracing cost on a wire workload this latency-bound).
    xst_obs::disable();
    time_ns(&mut client); // warm the connection and the table cache
    let (mut off_a, mut off_b, mut on) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..iters {
        off_a.push(time_ns(&mut client));
        off_b.push(time_ns(&mut client));
        xst_obs::enable();
        on.push(time_ns(&mut client));
        // Drain spans and request records as a live scraper would, so
        // the rings never saturate and each iteration pays full price.
        xst_obs::collector().take_spans();
        xst_obs::request_log().clear();
        xst_obs::disable();
    }
    if was_enabled {
        xst_obs::enable();
    }
    drop(client);
    server.stop();

    let (a, b, e) = (median(off_a), median(off_b), median(on));
    let noise = b as f64 / a as f64;
    let overhead = e as f64 / a.min(b) as f64;

    let mut t = TableBuilder::new(
        "E17 wire tracing overhead (per-request eval, median of iters)",
        &["phase", "rows", "reqs/iter", "median us/req", "vs off (A)"],
    );
    for (phase, ns, ratio) in [
        ("tracing off (A)", a, 1.0),
        ("tracing off (B)", b, noise),
        ("tracing on", e, e as f64 / a as f64),
    ] {
        t.row(&[
            phase.into(),
            n.to_string(),
            requests.to_string(),
            format!("{:.2}", ns as f64 / requests as f64 / 1e3),
            format!("{ratio:.3}x"),
        ]);
    }
    let table = t.finish(
        "off(B)/off(A) is the noise floor of two identical untraced runs; \
              on/off prices the whole v2 pipeline — client root span, Traced \
              wrapper bytes, server-side context adoption, cost scope, and a \
              request-log record per request.",
    );

    let meta = vec![
        ("rows", n.to_string()),
        ("requests_per_iter", requests.to_string()),
        ("iters", iters.to_string()),
        ("workload", "wire eval on a warm session".to_string()),
    ];
    let entries = vec![
        BenchEntry::ns("e17_wire_eval_tracing_off_a", a, &meta),
        BenchEntry::ns("e17_wire_eval_tracing_off_b", b, &meta),
        BenchEntry::ns("e17_wire_eval_tracing_on", e, &meta),
        BenchEntry::ratio(
            "e17_disabled_noise_floor",
            noise,
            &[(
                "note",
                "two interleaved tracing-off runs; the disabled wire path \
                 (plain v2 requests, one atomic load per site) is bounded by \
                 this ratio"
                    .to_string(),
            )],
        ),
        BenchEntry::ratio(
            "e17_enabled_overhead",
            overhead,
            &[(
                "note",
                "tracing on vs best tracing-off median; acceptance bar 1.05x".to_string(),
            )],
        ),
    ];
    (table, entries)
}

/// E18 — scatter-gather evaluation overhead. The sharding tentpole
/// lowers every plan over per-shard fragments and gathers once at the
/// root; the promise is that a 1-shard deployment pays for the routing
/// arithmetic and the `Frag` bookkeeping, not an extra evaluation —
/// the acceptance bar is 1.05× against the best whole-set run. Wider
/// shard counts are reported for shape (on one core the zip kernels
/// add per-fragment dispatch, so the interesting number is how flat
/// the curve stays, not a speedup).
pub fn e18_scatter_gather(
    n: usize,
    iters: usize,
    shard_counts: &[usize],
) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use xst_core::ops::{partition_members, Parallelism};
    use xst_query::{eval_parallel, eval_sharded, ShardedBindings};

    let x = ExtendedSet::classical((0..n as i64).collect::<Vec<_>>());
    let y = ExtendedSet::classical(((n / 2) as i64..(n + n / 2) as i64).collect::<Vec<_>>());
    // Exercises the zip, fragment-vs-whole, and gather paths in one
    // plan: (x ∩ y) ∪ (x ∖ y).
    let plan = Expr::table("x")
        .intersect(Expr::table("y"))
        .union(Expr::table("x").difference(Expr::table("y")));
    let par = Parallelism::sequential();
    let whole: Bindings = [("x".to_string(), x.clone()), ("y".to_string(), y.clone())]
        .into_iter()
        .collect();
    let envs: Vec<(usize, ShardedBindings)> = shard_counts
        .iter()
        .map(|&s| {
            let env: ShardedBindings = [
                ("x".to_string(), partition_members(&x, s)),
                ("y".to_string(), partition_members(&y, s)),
            ]
            .into_iter()
            .collect();
            (s, env)
        })
        .collect();

    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let time_whole = || -> u64 {
        let start = Instant::now();
        std::hint::black_box(eval_parallel(&plan, &whole, &par).unwrap());
        start.elapsed().as_nanos() as u64
    };
    // Interleaved sampling, E17-style: each iteration takes one whole-A,
    // one whole-B, and one sharded sample per shard count back to back,
    // so a lost timeslice hits every series equally.
    let expected = eval_parallel(&plan, &whole, &par).unwrap().0; // warm-up + oracle
    let (mut whole_a, mut whole_b) = (Vec::new(), Vec::new());
    let mut sharded: Vec<Vec<u64>> = vec![Vec::new(); envs.len()];
    for _ in 0..iters {
        whole_a.push(time_whole());
        whole_b.push(time_whole());
        for (series, (_, env)) in sharded.iter_mut().zip(&envs) {
            let start = Instant::now();
            let (got, _) = eval_sharded(&plan, env, &par).unwrap();
            series.push(start.elapsed().as_nanos() as u64);
            assert_eq!(got, expected, "scatter-gather must be exact");
        }
    }

    let (a, b) = (median(whole_a), median(whole_b));
    let best = a.min(b);
    let noise = b as f64 / a as f64;
    let mut t = TableBuilder::new(
        "E18 scatter-gather eval overhead (median of iters)",
        &["evaluator", "rows", "median ms", "vs whole (A)"],
    );
    for (label, ns) in [("whole-set (A)", a), ("whole-set (B)", b)] {
        t.row(&[
            label.into(),
            n.to_string(),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{:.3}x", ns as f64 / a as f64),
        ]);
    }
    let meta = vec![
        ("rows", n.to_string()),
        ("iters", iters.to_string()),
        ("plan", "(x∩y)∪(x∖y)".to_string()),
    ];
    let mut entries = vec![
        BenchEntry::ns("e18_whole_eval_a", a, &meta),
        BenchEntry::ns("e18_whole_eval_b", b, &meta),
        BenchEntry::ratio(
            "e18_whole_noise_floor",
            noise,
            &[(
                "note",
                "two interleaved whole-set runs; bounds what a ratio on this \
                 box can resolve"
                    .to_string(),
            )],
        ),
    ];
    let mut one_shard_ratio = None;
    for (series, (s, _)) in sharded.iter().zip(&envs) {
        let m = median(series.clone());
        t.row(&[
            format!("sharded ×{s}"),
            n.to_string(),
            format!("{:.3}", m as f64 / 1e6),
            format!("{:.3}x", m as f64 / a as f64),
        ]);
        entries.push(BenchEntry::ns(format!("e18_sharded_eval_s{s}"), m, &meta));
        if *s == 1 {
            one_shard_ratio = Some(m as f64 / best as f64);
        }
    }
    if let Some(r) = one_shard_ratio {
        entries.push(BenchEntry::ratio(
            "e18_merge_overhead_1shard",
            r,
            &[(
                "note",
                "sharded evaluator at 1 shard vs best whole-set median; \
                 acceptance bar 1.05x"
                    .to_string(),
            )],
        ));
    }
    let table = t.finish(
        "whole(B)/whole(A) is the noise floor; sharded ×1 runs the full \
              scatter-gather machinery (fragment bookkeeping + root gather) \
              over a single fragment and must sit at that floor. Wider \
              counts show the per-fragment dispatch cost on one core.",
    );
    (table, entries)
}

/// E19 — cross-process sharding: the wire 2PC coordinator (real TCP,
/// frame codec, Prepare/Decide round, durable decision log) vs the
/// in-process [`ShardedEngine`] on the identical workload — one
/// distributed transaction scattering `n` members across 2 shards,
/// then one gathered read. E18 priced the scatter-gather *evaluator*;
/// this prices the *wire* around it. Interleaved A/B sampling:
/// every iteration takes one in-process and one wire sample of each
/// phase back to back, so a lost timeslice hits both series equally.
pub fn e19_wire_coordinator(
    n: usize,
    iters: usize,
) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;
    use std::sync::Arc;
    use xst_client::coord::Coordinator;
    use xst_server::{
        member_schema, records_identity_to_set, set_to_records, ServedEngine, Server, ServerConfig,
    };
    use xst_storage::ShardedEngine;

    const SHARDS: usize = 2;
    let set = ExtendedSet::classical((0..n as i64).collect::<Vec<_>>());
    let records = set_to_records(&set);

    // The in-process baseline: one engine, SHARDS shards, internal 2PC.
    let engine = ShardedEngine::with_shards(SHARDS);

    // The wire cluster: SHARDS single-shard servers plus a coordinator
    // running the same two-phase round over TCP.
    let mut servers = Vec::with_capacity(SHARDS);
    let mut addrs = Vec::with_capacity(SHARDS);
    for _ in 0..SHARDS {
        let served = Arc::new(ServedEngine::new());
        let server = Server::start(served, "127.0.0.1:0", ServerConfig::default()).unwrap();
        addrs.push(server.addr().to_string());
        servers.push(server);
    }
    let mut coord = Coordinator::connect(&addrs, Some(std::time::Duration::from_secs(30))).unwrap();

    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let (mut ip_txn, mut wire_txn) = (Vec::new(), Vec::new());
    let (mut ip_read, mut wire_read) = (Vec::new(), Vec::new());
    for i in 0..iters {
        // Fresh tables per iteration so every sample writes and reads
        // the same number of rows.
        let t_ip = format!("ip{i}");
        let t_wire = format!("wire{i}");

        engine.create_table(&t_ip, member_schema()).unwrap();
        let start = Instant::now();
        let mut txn = engine.begin();
        for r in &records {
            txn.insert(&t_ip, r.clone()).unwrap();
        }
        std::hint::black_box(txn.commit().unwrap());
        ip_txn.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        coord.begin().unwrap();
        coord.put(&t_wire, &set).unwrap();
        std::hint::black_box(coord.commit().unwrap());
        wire_txn.push(start.elapsed().as_nanos() as u64);

        // Both reads end in the member set (the server applies the
        // identity→members conversion per fragment; the in-process
        // mirror pays the same conversion once).
        let start = Instant::now();
        let got_ip = records_identity_to_set(&engine.latest_identity(&t_ip).unwrap()).unwrap();
        ip_read.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        let got_wire = coord.get(&t_wire).unwrap();
        wire_read.push(start.elapsed().as_nanos() as u64);

        assert_eq!(got_wire, got_ip, "wire gather must match in-process gather");
        assert_eq!(got_wire, set, "no member may be lost or invented");
    }
    drop(coord);
    for server in &mut servers {
        server.stop();
    }

    let (it, wt) = (median(ip_txn), median(wire_txn));
    let (ir, wr) = (median(ip_read), median(wire_read));
    let mut t = TableBuilder::new(
        "E19 wire 2PC coordinator vs in-process sharded engine (median of iters)",
        &[
            "phase",
            "rows",
            "in-process ms",
            "wire ms",
            "wire/in-process",
        ],
    );
    t.row(&[
        "txn (begin+put+2PC commit)".into(),
        n.to_string(),
        format!("{:.3}", it as f64 / 1e6),
        format!("{:.3}", wt as f64 / 1e6),
        format!("{:.2}x", wt as f64 / it as f64),
    ]);
    t.row(&[
        "gathered read".into(),
        n.to_string(),
        format!("{:.3}", ir as f64 / 1e6),
        format!("{:.3}", wr as f64 / 1e6),
        format!("{:.2}x", wr as f64 / ir as f64),
    ]);
    let meta = vec![
        ("rows", n.to_string()),
        ("iters", iters.to_string()),
        ("shards", SHARDS.to_string()),
    ];
    let entries = vec![
        BenchEntry::ns("e19_inproc_txn", it, &meta),
        BenchEntry::ns("e19_wire_txn", wt, &meta),
        BenchEntry::ratio(
            "e19_wire_txn_overhead",
            wt as f64 / it as f64,
            &[(
                "note",
                "wire 2PC round (frames + CRC + decision log) over the \
                 in-process engine's internal two-phase commit"
                    .to_string(),
            )],
        ),
        BenchEntry::ns("e19_inproc_read", ir, &meta),
        BenchEntry::ns("e19_wire_read", wr, &meta),
        BenchEntry::ratio(
            "e19_wire_read_overhead",
            wr as f64 / ir as f64,
            &[(
                "note",
                "per-shard frag-read round-trips + root gather over the \
                 in-process gathered identity"
                    .to_string(),
            )],
        ),
    ];
    let table = t.finish(
        "the wire columns pay the frame codec, CRC, kernel round-trips, \
         and the coordinator's durable decision log on top of the same \
         storage work; the ratio is the cost of crossing process \
         boundaries, not of sharding itself (E18 prices that).",
    );
    (table, entries)
}

/// E20 — static-analyzer wall time. `xst-lint` runs on every CI push
/// (`--deny-all`), so its cost is part of the edit-compile loop and
/// gets a budget: a full workspace scan — lex, parse, call-graph
/// fixpoint, all four passes — must finish well under 5 s on a 1-CPU
/// box. Reports the median of `iters` full scans plus per-phase
/// context (files scanned, findings justified).
pub fn e20_lint_workspace(iters: usize) -> (String, Vec<crate::report_json::BenchEntry>) {
    use crate::report_json::BenchEntry;

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };

    let mut scans = Vec::with_capacity(iters);
    let mut files = 0usize;
    let mut justified = 0usize;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let report = xst_lint::run_lint(&root).expect("workspace scan");
        scans.push(start.elapsed().as_nanos() as u64);
        assert_eq!(report.error_count(), 0, "the tree must scan clean");
        files = report.files_checked;
        justified = report.justified_count();
    }
    let scan = median(scans);
    const BUDGET_NS: u64 = 5_000_000_000;
    assert!(
        scan < BUDGET_NS,
        "analyzer blew its 5 s budget: {} ms",
        scan / 1_000_000
    );

    let mut t = TableBuilder::new(
        "E20 static analyzer full-workspace scan (median of iters)",
        &["files", "justified findings", "scan ms", "budget ms"],
    );
    t.row(&[
        files.to_string(),
        justified.to_string(),
        format!("{:.1}", scan as f64 / 1e6),
        format!("{:.0}", BUDGET_NS as f64 / 1e6),
    ]);
    let meta = vec![
        ("files", files.to_string()),
        ("iters", iters.to_string()),
        ("justified", justified.to_string()),
    ];
    let entries = vec![
        BenchEntry::ns("e20_lint_workspace", scan, &meta),
        BenchEntry::ratio(
            "e20_lint_budget_fraction",
            scan as f64 / BUDGET_NS as f64,
            &[(
                "note",
                "fraction of the 5 s CI budget one full scan consumes \
                 (lex + parse + call-graph fixpoint + all four passes)"
                    .to_string(),
            )],
        ),
    ];
    let table = t.finish(
        "the analyzer re-reads and re-parses every crates/*/src file from \
         scratch each scan; staying far inside the budget is what lets CI \
         run it with --deny-all on every push.",
    );
    (table, entries)
}
