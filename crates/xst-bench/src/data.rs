//! Deterministic workload generators shared by the Criterion benches and
//! the `report` binary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xst_core::{ExtendedSet, Value};
use xst_storage::{Record, Schema, Storage, Table};

/// Fixed seed: experiments are reproducible run to run.
pub const SEED: u64 = 0x5E7_1977;

/// An RNG for one experiment.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(SEED)
}

/// A `parts(id, name, qty, color)` table of `n` rows; `color` is drawn from
/// `distinct_colors` values so equality selections have selectivity
/// `1/distinct_colors`.
pub fn parts_table(storage: &Storage, n: usize, distinct_colors: usize) -> Table {
    let mut rng = rng();
    let schema = Schema::new(["id", "name", "qty", "color"]);
    let mut t = Table::create(storage, schema);
    let rows: Vec<Record> = (0..n)
        .map(|i| {
            Record::new([
                Value::Int(i as i64),
                Value::str(format!("part-{i}")),
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..distinct_colors as i64)),
            ])
        })
        .collect();
    t.load(&rows).unwrap();
    t
}

/// A `supplies(sid, pid, qty)` table of `n` rows over `parts` part ids.
pub fn supplies_table(storage: &Storage, n: usize, parts: usize) -> Table {
    let mut rng = rng();
    let schema = Schema::new(["sid", "pid", "qty"]);
    let mut t = Table::create(storage, schema);
    let rows: Vec<Record> = (0..n)
        .map(|i| {
            Record::new([
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..parts as i64)),
                Value::Int(rng.gen_range(1..100)),
            ])
        })
        .collect();
    t.load(&rows).unwrap();
    t
}

/// A classical pair relation `{⟨i, f(i)⟩}` of `n` members mapping stage `k`
/// keys to stage `k+1` keys — chains compose end to end.
pub fn stage_relation(n: usize, stage: usize) -> ExtendedSet {
    ExtendedSet::classical((0..n).map(|i| {
        Value::Set(ExtendedSet::pair(
            Value::Int((stage * 1_000_000 + i) as i64),
            Value::Int(((stage + 1) * 1_000_000 + (i * 7 + 3) % n) as i64),
        ))
    }))
}

/// A batch of `k` singleton-tuple inputs for stage 0 of a pipeline.
pub fn stage_inputs(n: usize, k: usize) -> ExtendedSet {
    ExtendedSet::classical(
        (0..k.min(n)).map(|i| Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))),
    )
}

/// A random extended set of `n` members with scoped memberships and some
/// nesting — canonicalization fodder.
pub fn scoped_set(n: usize) -> ExtendedSet {
    let mut rng = rng();
    ExtendedSet::from_pairs((0..n).map(|_| {
        let e: i64 = rng.gen_range(0..(n as i64 * 2).max(1));
        let s: i64 = rng.gen_range(0..8);
        (Value::Int(e), Value::Int(s))
    }))
}

/// A relation of `n` classical pairs with keys in `0..keyspace`.
pub fn pair_relation(n: usize, keyspace: i64) -> ExtendedSet {
    let mut rng = rng();
    ExtendedSet::classical((0..n).map(|_| {
        Value::Set(ExtendedSet::pair(
            Value::Int(rng.gen_range(0..keyspace)),
            Value::Int(rng.gen_range(0..keyspace)),
        ))
    }))
}
