//! # xst-bench — experiment harness for the XST reproduction
//!
//! * [`data`] — deterministic workload generators (fixed seed);
//! * [`experiments`] — the E1–E6 measured experiments plus the F-class
//!   formal-artifact summary, as printable tables;
//! * [`table`] — report rendering.
//!
//! `cargo run -p xst-bench --bin report` regenerates every table in
//! EXPERIMENTS.md; `cargo bench -p xst-bench` runs the Criterion versions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod experiments;
pub mod table;
