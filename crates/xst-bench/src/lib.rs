//! # xst-bench — experiment harness for the XST reproduction
//!
//! * [`data`] — deterministic workload generators (fixed seed);
//! * [`experiments`] — the E1–E12 measured experiments plus the F-class
//!   formal-artifact summary, as printable tables;
//! * [`table`] — report rendering;
//! * [`report_json`] — machine-readable results (`BENCH_PR2.json`).
//!
//! `cargo run -p xst-bench --bin report` regenerates every table in
//! EXPERIMENTS.md and writes BENCH_PR2.json; `cargo bench -p xst-bench`
//! runs the Criterion versions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod experiments;
pub mod report_json;
pub mod table;
