//! Machine-readable benchmark results.
//!
//! The `report` binary appends every structured entry its experiments
//! produce and writes them as `BENCH_PR2.json` at the repository root, so
//! CI and later sessions can diff numbers without scraping the printed
//! tables. The format is documented in EXPERIMENTS.md ("Machine-readable
//! results"):
//!
//! ```json
//! {
//!   "schema": "xst-bench-report/1",
//!   "seed": "0x5e71977",
//!   "entries": {
//!     "e12_workload_collector_off": {
//!       "value": 12345678.0,
//!       "unit": "ns",
//!       "meta": { "iters": "15", "rows": "2000" }
//!     }
//!   }
//! }
//! ```
//!
//! No serde in the offline build environment, so the writer is a small
//! hand-rolled emitter over the one shape we need.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured result: an experiment id, a value with a unit, and
/// free-form string metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable experiment id, e.g. `e12_workload_collector_on`.
    pub id: String,
    /// The measured value.
    pub value: f64,
    /// Unit of `value`: `"ns"` for median wall-times, `"ratio"` for
    /// dimensionless comparisons.
    pub unit: &'static str,
    /// Context needed to interpret the number (sizes, iteration counts).
    pub meta: BTreeMap<String, String>,
}

impl BenchEntry {
    /// A median-nanoseconds entry.
    pub fn ns(id: impl Into<String>, median_ns: u64, meta: &[(&str, String)]) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            value: median_ns as f64,
            unit: "ns",
            meta: to_meta(meta),
        }
    }

    /// A dimensionless ratio entry.
    pub fn ratio(id: impl Into<String>, value: f64, meta: &[(&str, String)]) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            value,
            unit: "ratio",
            meta: to_meta(meta),
        }
    }
}

fn to_meta(pairs: &[(&str, String)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

/// Render the full report document. Entries keep insertion order.
pub fn render_json(entries: &[BenchEntry], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"xst-bench-report/1\",\n");
    let _ = writeln!(out, "  \"seed\": \"{seed:#x}\",");
    out.push_str("  \"entries\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", escape(&e.id));
        let _ = writeln!(out, "      \"value\": {},", number(e.value));
        let _ = writeln!(out, "      \"unit\": \"{}\",", escape(e.unit));
        out.push_str("      \"meta\": {");
        for (j, (k, v)) in e.meta.iter().enumerate() {
            let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
            if j + 1 < e.meta.len() {
                out.push_str(", ");
            }
        }
        out.push_str("}\n");
        out.push_str("    }");
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_documented_shape() {
        let entries = vec![
            BenchEntry::ns("e12_off", 1_500_000, &[("rows", "2000".to_string())]),
            BenchEntry::ratio("e12_ratio", 1.0425, &[]),
        ];
        let json = render_json(&entries, 0x5E7_1977);
        assert!(
            json.contains("\"schema\": \"xst-bench-report/1\""),
            "{json}"
        );
        assert!(json.contains("\"seed\": \"0x5e71977\""), "{json}");
        assert!(json.contains("\"e12_off\""), "{json}");
        assert!(json.contains("\"value\": 1500000.0"), "{json}");
        assert!(json.contains("\"unit\": \"ns\""), "{json}");
        assert!(json.contains("\"rows\": \"2000\""), "{json}");
        assert!(json.contains("\"value\": 1.0425"), "{json}");
        // Balanced braces — the document parses as far as a naive check
        // can tell (no JSON parser in the offline environment).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn escaping_is_applied() {
        let entries = vec![BenchEntry::ns(
            "weird\"id\\n",
            1,
            &[("k\"", "v\\".to_string())],
        )];
        let json = render_json(&entries, 1);
        assert!(json.contains("weird\\\"id\\\\n"), "{json}");
        assert!(json.contains("\"k\\\"\": \"v\\\\\""), "{json}");
    }
}
