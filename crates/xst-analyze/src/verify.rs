//! Rewrite-soundness verification: check that an optimizer rewrite
//! preserved the plan's statically inferred signature.
//!
//! Abstract results are over-approximations, so two sound analyses of
//! semantically equal plans need not be *identical* — a rewrite may
//! legitimately tighten or loosen the abstraction. What a sound rewrite can
//! never do is produce analyses that *contradict* each other: facts proven
//! on one side must not be refuted on the other. When both sides constant-
//! fold to exact sets the check is exact equality; otherwise it is a
//! contradiction check over emptiness, cardinality bounds, and scope
//! signatures.

use std::fmt;

use crate::analyze::{analyze, Analysis, AnalysisEnv};
use crate::lattice::{Emptiness, ScopeSig};
use crate::plan::AbstractPlan;

/// Why a rewrite failed signature verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureMismatch {
    /// Human-readable explanation of the contradiction.
    pub reason: String,
}

impl fmt::Display for SignatureMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite is not signature-preserving: {}", self.reason)
    }
}

impl std::error::Error for SignatureMismatch {}

fn mismatch(reason: impl Into<String>) -> Result<(), SignatureMismatch> {
    Err(SignatureMismatch {
        reason: reason.into(),
    })
}

/// Check that two analyses (of a plan before and after a rewrite) do not
/// contradict each other at the root.
pub fn check_signature_preserved(
    before: &Analysis,
    after: &Analysis,
) -> Result<(), SignatureMismatch> {
    let (b, a) = (&before.root.set, &after.root.set);
    if let (Some(bx), Some(ax)) = (&b.exact, &a.exact) {
        // Both sides constant-folded: the strongest possible check.
        if bx != ax {
            return mismatch(format!("exact results differ: before = {bx}, after = {ax}"));
        }
        return Ok(());
    }
    match (b.emptiness, a.emptiness) {
        (Emptiness::ProvablyEmpty, Emptiness::ProvablyNonEmpty)
        | (Emptiness::ProvablyNonEmpty, Emptiness::ProvablyEmpty) => {
            return mismatch(format!(
                "emptiness contradiction: before is {}, after is {}",
                b.emptiness, a.emptiness
            ));
        }
        _ => {}
    }
    if b.card.disjoint(&a.card) {
        return mismatch(format!(
            "cardinality bounds are disjoint: before {} vs after {}",
            b.card, a.card
        ));
    }
    // Disjoint finite signatures are only contradictory when one side is
    // provably non-empty (two abstractions of ∅ trivially share no scope).
    let non_empty =
        b.emptiness == Emptiness::ProvablyNonEmpty || a.emptiness == Emptiness::ProvablyNonEmpty;
    if non_empty && b.sig.provably_disjoint(&a.sig) == Some(true) {
        if let (ScopeSig::Finite(bs), ScopeSig::Finite(asig)) = (&b.sig, &a.sig) {
            if !bs.is_empty() && !asig.is_empty() {
                return mismatch(format!(
                    "scope signatures are disjoint on a non-empty result: \
                     before {} vs after {}",
                    b.sig, a.sig
                ));
            }
        }
    }
    Ok(())
}

/// Analyze both sides of a rewrite under `env` and verify they agree.
pub fn verify_rewrite<P: AbstractPlan>(
    before: &P,
    after: &P,
    env: &AnalysisEnv,
) -> Result<(), SignatureMismatch> {
    check_signature_preserved(&analyze(before, env), &analyze(after, env))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanShape;
    use xst_core::{xset, ExtendedSet};

    /// A minimal plan representation for exercising the analyzer directly.
    enum TestPlan {
        Lit(ExtendedSet),
        Table(String),
        Union(Box<TestPlan>, Box<TestPlan>),
        Intersect(Box<TestPlan>, Box<TestPlan>),
    }

    impl AbstractPlan for TestPlan {
        fn shape(&self) -> PlanShape<'_, Self> {
            match self {
                TestPlan::Lit(s) => PlanShape::Literal(s),
                TestPlan::Table(n) => PlanShape::Table(n),
                TestPlan::Union(a, b) => PlanShape::Union(a, b),
                TestPlan::Intersect(a, b) => PlanShape::Intersect(a, b),
            }
        }

        fn describe(&self) -> String {
            match self {
                TestPlan::Lit(s) => format!("{s}"),
                TestPlan::Table(n) => n.clone(),
                TestPlan::Union(..) => "(∪)".into(),
                TestPlan::Intersect(..) => "(∩)".into(),
            }
        }
    }

    fn lit(s: ExtendedSet) -> TestPlan {
        TestPlan::Lit(s)
    }

    #[test]
    fn identical_plans_verify() {
        let p = TestPlan::Union(Box::new(lit(xset![1, 2])), Box::new(lit(xset![2, 3])));
        verify_rewrite(&p, &p, &AnalysisEnv::closed()).expect("self-rewrite verifies");
    }

    #[test]
    fn exact_fold_catches_result_changes() {
        let before = lit(xset![1, 2]);
        let after = lit(xset![1, 2, 3]);
        let err =
            verify_rewrite(&before, &after, &AnalysisEnv::closed()).expect_err("results differ");
        assert!(err.reason.contains("exact results differ"), "{err}");
    }

    #[test]
    fn emptiness_contradiction_is_caught() {
        // Non-exact abstractions: a large table vs the empty set.
        let mut env = AnalysisEnv::closed().with_scan_cap(1);
        let big = ExtendedSet::classical((0..10).map(xst_core::Value::Int));
        env.bind("t", &big);
        let before = TestPlan::Table("t".into());
        let after = lit(ExtendedSet::empty());
        let err = verify_rewrite(&before, &after, &env).expect_err("empty vs non-empty");
        assert!(err.reason.contains("emptiness"), "{err}");
    }

    #[test]
    fn unbound_table_in_closed_env_is_an_error() {
        let a = analyze(&TestPlan::Table("nope".into()), &AnalysisEnv::closed());
        assert!(a.is_rejected());
        assert!(!a.proved_safe());
        let e = a.to_error().expect("rejected analyses produce errors");
        assert!(e.to_string().contains("unbound-table"));
    }

    #[test]
    fn open_env_tables_withdraw_safety_but_do_not_reject() {
        let a = analyze(&TestPlan::Table("later".into()), &AnalysisEnv::open());
        assert!(!a.is_rejected());
        assert!(!a.proved_safe());
    }

    #[test]
    fn empty_subplan_warning_fires_at_the_source_only() {
        // ({a^1} ∩ {a^2}) ∪ ({a^1} ∩ {a^2}): two sources, two warnings —
        // the union inheriting emptiness stays quiet.
        let mk = || {
            TestPlan::Intersect(
                Box::new(lit(xset!["a" => 1])),
                Box::new(lit(xset!["a" => 2])),
            )
        };
        let p = TestPlan::Union(Box::new(mk()), Box::new(mk()));
        let a = analyze(&p, &AnalysisEnv::closed());
        assert!(!a.is_rejected());
        let empties: Vec<_> = a
            .warnings()
            .filter(|d| d.code == crate::diag::DiagCode::EmptySubplan)
            .collect();
        assert_eq!(empties.len(), 2, "diagnostics: {:?}", a.diagnostics);
        assert_eq!(
            a.root.set.emptiness,
            crate::lattice::Emptiness::ProvablyEmpty
        );
    }
}
