//! Plan-shape abstraction: how the analyzer sees a query plan without
//! depending on `xst-query`.
//!
//! `xst-query` depends on this crate (the evaluator gates on analysis and
//! the optimizer consults it), so the analyzer cannot name
//! `xst_query::Expr` directly. Instead any plan representation implements
//! [`AbstractPlan`], exposing one [`PlanShape`] level at a time; the
//! analyzer recurses structurally through the shapes.

use xst_core::{ExtendedSet, Scope};

/// One structural level of a query plan, borrowed from the concrete
/// representation. The variants mirror the XST plan algebra exactly.
pub enum PlanShape<'a, P> {
    /// A literal extended set.
    Literal(&'a ExtendedSet),
    /// A named table to be resolved against bindings at evaluation time.
    Table(&'a str),
    /// `A ∪ B`.
    Union(&'a P, &'a P),
    /// `A ∩ B`.
    Intersect(&'a P, &'a P),
    /// `A ~ B`.
    Difference(&'a P, &'a P),
    /// `A ⊗ B` (generalized cross product, Definition 9.3).
    Cross(&'a P, &'a P),
    /// `R |_σ A` (σ-restriction, Definition 7.6).
    Restrict {
        /// The restricted set.
        r: &'a P,
        /// The restriction specification σ.
        sigma: &'a ExtendedSet,
        /// The restricting set.
        a: &'a P,
    },
    /// `𝔇_σ(R)` (σ-domain, Definition 7.4).
    Domain {
        /// The input set.
        r: &'a P,
        /// The domain specification σ.
        sigma: &'a ExtendedSet,
    },
    /// `R[A]_⟨σ1,σ2⟩` (image, Definition 8.2).
    Image {
        /// The carrier set.
        r: &'a P,
        /// The input set.
        a: &'a P,
        /// The scope pair `⟨σ1,σ2⟩`.
        scope: &'a Scope,
    },
    /// The relative product of `F` and `G` under `⟨σ,ω⟩` (Definition 10.1).
    RelProduct {
        /// The left operand.
        f: &'a P,
        /// The left scope pair.
        sigma: &'a Scope,
        /// The right operand.
        g: &'a P,
        /// The right scope pair.
        omega: &'a Scope,
    },
}

/// A plan representation the analyzer can walk.
pub trait AbstractPlan: Sized {
    /// Borrow this node's structural shape.
    fn shape(&self) -> PlanShape<'_, Self>;

    /// A short human-readable rendering of this node, used to anchor
    /// diagnostics.
    fn describe(&self) -> String;
}
