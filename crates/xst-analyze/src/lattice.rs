//! The abstract domain: what the analyzer can know about a subplan's result
//! without running it.
//!
//! Every lattice element here is a sound *over-approximation* of the concrete
//! result the evaluator would produce:
//!
//! * [`ScopeSig`] — a superset of the scopes the result's members can carry.
//!   `Finite(S)` means "every member scope is in `S`"; [`ScopeSig::Top`]
//!   means nothing is known. Because signatures are supersets, two subplans
//!   with *disjoint* finite signatures provably intersect to `∅` — the key
//!   fact the optimizer's analyzer-driven prune exploits.
//! * [`Emptiness`] — the three-point emptiness lattice.
//! * [`CardBounds`] — inclusive cardinality bounds (`hi = None` = unbounded).
//! * `elems_tuples` / `scopes_tuples` — *proof* flags: `true` means every
//!   member element (resp. scope) is provably cross-safe, i.e. its set view
//!   is an n-tuple (Definition 9.1; atoms view as `∅`, the 0-tuple). When
//!   both hold on both operands, `⊗` takes the concatenation path of
//!   Definition 9.2 and can never raise a scope collision.
//! * `exact` — bounded constant folding: for small literal-only subplans the
//!   analyzer knows the result precisely.

use std::collections::BTreeSet;
use std::fmt;
use xst_core::ops::{
    concat, cross, difference, image, intersection, relative_product, rescope_value_by_scope,
    sigma_domain, sigma_restrict, union,
};
use xst_core::{ExtendedSet, Scope, Value, XstError};

/// Maximum number of distinct scopes a [`ScopeSig::Finite`] may carry before
/// the analyzer widens it to [`ScopeSig::Top`].
pub const SIG_WIDTH_CAP: usize = 64;

/// Maximum cardinality up to which the analyzer keeps constant-folded exact
/// results. Larger folded sets still refine the signature/cardinality fields
/// but drop the `exact` witness.
pub const EXACT_CARD_CAP: usize = 64;

/// Default member-scan budget when deriving an abstraction from a concrete
/// set (a literal or a bound table). Sets larger than the budget are
/// abstracted in O(1): exact cardinality and emptiness, `Top` signature.
pub const DEFAULT_SCAN_CAP: usize = 2048;

/// Member budget for proving the all-tuples cross-safety flags during a
/// scan. Past it the flags degrade to "unknown" (never to a wrong proof):
/// cross-safety needs *every* member checked, and spending O(n) tuple
/// probes on a huge literal buys one `⊗` proof — while the signature the
/// same scan builds is what emptiness pruning actually uses.
pub const FLAG_PROBE_CAP: usize = 2048;

/// Is `v` safe as a cross-product operand component? True iff its set view
/// is an n-tuple — atoms view as `∅`, the 0-tuple, so only non-tuple *sets*
/// force `⊗` onto the fallible scope-disjoint-union path.
pub fn cross_safe(v: &Value) -> bool {
    // Equivalent to `v.as_set_view().tuple_len().is_some()` without the
    // set-view clone: atoms view as ∅, the 0-tuple, which is cross-safe.
    match v {
        Value::Set(s) => s.tuple_len().is_some(),
        _ => true,
    }
}

/// Three-point emptiness lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emptiness {
    /// The subplan provably evaluates to `∅`.
    ProvablyEmpty,
    /// The subplan provably evaluates to a non-empty set (assuming it
    /// evaluates at all).
    ProvablyNonEmpty,
    /// Nothing is known.
    Unknown,
}

impl fmt::Display for Emptiness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Emptiness::ProvablyEmpty => "provably-empty",
            Emptiness::ProvablyNonEmpty => "provably-non-empty",
            Emptiness::Unknown => "unknown",
        })
    }
}

/// Inclusive cardinality bounds; `hi = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardBounds {
    /// Least possible cardinality.
    pub lo: u64,
    /// Greatest possible cardinality, if bounded.
    pub hi: Option<u64>,
}

impl CardBounds {
    /// The exact bound `[n, n]`.
    pub fn exact(n: u64) -> CardBounds {
        CardBounds { lo: n, hi: Some(n) }
    }

    /// The unknown bound `[0, ∞)`.
    pub fn unknown() -> CardBounds {
        CardBounds { lo: 0, hi: None }
    }

    /// The bound `[lo, hi]`.
    pub fn range(lo: u64, hi: Option<u64>) -> CardBounds {
        CardBounds { lo, hi }
    }

    /// Do two bounds share no possible cardinality?
    pub fn disjoint(&self, other: &CardBounds) -> bool {
        let above = |a: &CardBounds, b: &CardBounds| b.hi.is_some_and(|h| a.lo > h);
        above(self, other) || above(other, self)
    }

    fn hi_sum(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        Some(a?.saturating_add(b?))
    }

    fn hi_mul(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        Some(a?.saturating_mul(b?))
    }
}

impl fmt::Display for CardBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(hi) => write!(f, "[{}, {}]", self.lo, hi),
            None => write!(f, "[{}, ∞)", self.lo),
        }
    }
}

/// A scope signature: a sound superset of the scopes the members of a
/// subplan's result can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeSig {
    /// Nothing is known about member scopes.
    Top,
    /// Every member scope is one of these values.
    Finite(BTreeSet<Value>),
}

impl ScopeSig {
    /// The signature of `∅` (no scopes at all).
    pub fn empty() -> ScopeSig {
        ScopeSig::Finite(BTreeSet::new())
    }

    /// Build a finite signature, widening to [`ScopeSig::Top`] past
    /// [`SIG_WIDTH_CAP`].
    pub fn finite(scopes: impl IntoIterator<Item = Value>) -> ScopeSig {
        let set: BTreeSet<Value> = scopes.into_iter().collect();
        if set.len() > SIG_WIDTH_CAP {
            ScopeSig::Top
        } else {
            ScopeSig::Finite(set)
        }
    }

    /// Could a member carry scope `v` under this signature?
    pub fn admits(&self, v: &Value) -> bool {
        match self {
            ScopeSig::Top => true,
            ScopeSig::Finite(s) => s.contains(v),
        }
    }

    /// Signature of a union: the result's scopes come from either side.
    pub fn union(&self, other: &ScopeSig) -> ScopeSig {
        match (self, other) {
            (ScopeSig::Finite(a), ScopeSig::Finite(b)) => {
                ScopeSig::finite(a.iter().chain(b.iter()).cloned())
            }
            _ => ScopeSig::Top,
        }
    }

    /// Signature of an intersection: the result's scopes satisfy both sides.
    pub fn intersect(&self, other: &ScopeSig) -> ScopeSig {
        match (self, other) {
            (ScopeSig::Finite(a), ScopeSig::Finite(b)) => {
                ScopeSig::Finite(a.intersection(b).cloned().collect())
            }
            (ScopeSig::Top, s) | (s, ScopeSig::Top) => s.clone(),
        }
    }

    /// `Some(true)` when both signatures are finite and share no scope —
    /// which proves an intersection of the underlying sets is `∅`.
    pub fn provably_disjoint(&self, other: &ScopeSig) -> Option<bool> {
        match (self, other) {
            (ScopeSig::Finite(a), ScopeSig::Finite(b)) => Some(a.intersection(b).next().is_none()),
            _ => None,
        }
    }

    /// Apply a deterministic scope transformer to every admissible scope.
    pub fn map(&self, f: impl Fn(&Value) -> Value) -> ScopeSig {
        match self {
            ScopeSig::Top => ScopeSig::Top,
            ScopeSig::Finite(s) => ScopeSig::finite(s.iter().map(f)),
        }
    }

    /// Does this signature prove every member scope is cross-safe?
    pub fn provably_all_tuples(&self) -> bool {
        match self {
            ScopeSig::Top => false,
            ScopeSig::Finite(s) => s.iter().all(cross_safe),
        }
    }
}

impl fmt::Display for ScopeSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeSig::Top => f.write_str("⊤"),
            ScopeSig::Finite(s) => {
                f.write_str("{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Everything the analyzer knows about one subplan's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractSet {
    /// Superset of the member scopes.
    pub sig: ScopeSig,
    /// Emptiness verdict.
    pub emptiness: Emptiness,
    /// Cardinality bounds.
    pub card: CardBounds,
    /// Proof that every member element is cross-safe (an n-tuple view).
    pub elems_tuples: bool,
    /// Proof that every member scope is cross-safe.
    pub scopes_tuples: bool,
    /// Constant-folded exact result, when small enough to keep.
    pub exact: Option<ExtendedSet>,
}

/// What the analyzer concluded about one `⊗` node.
#[derive(Debug, Clone)]
pub enum CrossVerdict {
    /// The product provably cannot raise a scope collision.
    Safe(AbstractSet),
    /// Safety could not be proven; the abstraction is still sound *if* the
    /// product evaluates.
    Unproven(AbstractSet),
    /// The product provably fails with this error.
    Collision(XstError),
}

impl AbstractSet {
    /// The abstraction that knows nothing: any set at all.
    pub fn top() -> AbstractSet {
        AbstractSet {
            sig: ScopeSig::Top,
            emptiness: Emptiness::Unknown,
            card: CardBounds::unknown(),
            elems_tuples: false,
            scopes_tuples: false,
            exact: None,
        }
    }

    /// The canonical abstraction of `∅`.
    pub fn empty() -> AbstractSet {
        AbstractSet {
            sig: ScopeSig::empty(),
            emptiness: Emptiness::ProvablyEmpty,
            card: CardBounds::exact(0),
            elems_tuples: true,
            scopes_tuples: true,
            exact: Some(ExtendedSet::empty()),
        }
    }

    /// Abstract a concrete set (a literal or a bound table), scanning at
    /// most `scan_cap` members. Beyond the budget only O(1) facts are kept.
    pub fn from_set(s: &ExtendedSet, scan_cap: usize) -> AbstractSet {
        if s.is_empty() {
            return AbstractSet::empty();
        }
        let n = s.card();
        if n > scan_cap {
            return AbstractSet {
                sig: ScopeSig::Top,
                emptiness: Emptiness::ProvablyNonEmpty,
                card: CardBounds::exact(n as u64),
                elems_tuples: false,
                scopes_tuples: false,
                exact: None,
            };
        }
        // One fused pass: signature, cross-safety of elements and scopes.
        // Scopes are cloned only on first sight (real sets repeat a
        // handful of scopes across many members), the tuple probes
        // short-circuit once disproven, and past [`FLAG_PROBE_CAP`] the
        // flags degrade to "unknown" rather than pay O(n) tuple walks.
        let probe_flags = n <= FLAG_PROBE_CAP;
        let mut scopes: BTreeSet<Value> = BTreeSet::new();
        let mut widened = false;
        let mut elems_tuples = probe_flags;
        let mut scopes_tuples = probe_flags;
        for m in s.members() {
            if !widened && !scopes.contains(&m.scope) {
                if scopes.len() >= SIG_WIDTH_CAP {
                    widened = true;
                    scopes.clear();
                } else {
                    scopes.insert(m.scope.clone());
                }
            }
            elems_tuples = elems_tuples && cross_safe(&m.element);
            scopes_tuples = scopes_tuples && cross_safe(&m.scope);
        }
        AbstractSet {
            sig: if widened {
                ScopeSig::Top
            } else {
                ScopeSig::Finite(scopes)
            },
            emptiness: Emptiness::ProvablyNonEmpty,
            card: CardBounds::exact(n as u64),
            elems_tuples,
            scopes_tuples,
            exact: (n <= EXACT_CARD_CAP).then(|| s.clone()),
        }
    }

    /// Abstract a constant-folded result: full facts, `exact` kept only
    /// under [`EXACT_CARD_CAP`].
    fn folded(s: ExtendedSet) -> AbstractSet {
        AbstractSet::from_set(&s, usize::MAX)
    }

    /// Canonicalize: a provably-empty abstraction collapses to the precise
    /// [`AbstractSet::empty`], and signature-level tuple proofs are folded
    /// into the `scopes_tuples` flag.
    fn finish(mut self) -> AbstractSet {
        if self.emptiness == Emptiness::ProvablyEmpty {
            return AbstractSet::empty();
        }
        self.scopes_tuples = self.scopes_tuples || self.sig.provably_all_tuples();
        self
    }

    fn both_exact<'a>(
        &'a self,
        other: &'a AbstractSet,
    ) -> Option<(&'a ExtendedSet, &'a ExtendedSet)> {
        Some((self.exact.as_ref()?, other.exact.as_ref()?))
    }

    /// Transfer function for `A ∪ B`.
    pub fn union_with(&self, other: &AbstractSet) -> AbstractSet {
        if let Some((a, b)) = self.both_exact(other) {
            return AbstractSet::folded(union(a, b));
        }
        let emptiness = match (self.emptiness, other.emptiness) {
            (Emptiness::ProvablyNonEmpty, _) | (_, Emptiness::ProvablyNonEmpty) => {
                Emptiness::ProvablyNonEmpty
            }
            (Emptiness::ProvablyEmpty, Emptiness::ProvablyEmpty) => Emptiness::ProvablyEmpty,
            _ => Emptiness::Unknown,
        };
        AbstractSet {
            sig: self.sig.union(&other.sig),
            emptiness,
            card: CardBounds::range(
                self.card.lo.max(other.card.lo),
                CardBounds::hi_sum(self.card.hi, other.card.hi),
            ),
            elems_tuples: self.elems_tuples && other.elems_tuples,
            scopes_tuples: self.scopes_tuples && other.scopes_tuples,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `A ∩ B`. Disjoint finite signatures prove the
    /// intersection empty (signatures are supersets of the true scopes).
    pub fn intersect_with(&self, other: &AbstractSet) -> AbstractSet {
        if let Some((a, b)) = self.both_exact(other) {
            return AbstractSet::folded(intersection(a, b));
        }
        if self.emptiness == Emptiness::ProvablyEmpty
            || other.emptiness == Emptiness::ProvablyEmpty
            || self.sig.provably_disjoint(&other.sig) == Some(true)
        {
            return AbstractSet::empty();
        }
        AbstractSet {
            sig: self.sig.intersect(&other.sig),
            emptiness: Emptiness::Unknown,
            card: CardBounds::range(
                0,
                self.card
                    .hi
                    .min(other.card.hi)
                    .or(self.card.hi)
                    .or(other.card.hi),
            ),
            elems_tuples: self.elems_tuples || other.elems_tuples,
            scopes_tuples: self.scopes_tuples || other.scopes_tuples,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `A ~ B`.
    pub fn difference_with(&self, other: &AbstractSet) -> AbstractSet {
        if let Some((a, b)) = self.both_exact(other) {
            return AbstractSet::folded(difference(a, b));
        }
        if other.emptiness == Emptiness::ProvablyEmpty {
            return self.clone();
        }
        let lo = match other.card.hi {
            Some(h) => self.card.lo.saturating_sub(h),
            None => 0,
        };
        AbstractSet {
            sig: self.sig.clone(),
            emptiness: if self.emptiness == Emptiness::ProvablyEmpty {
                Emptiness::ProvablyEmpty
            } else if lo > 0 {
                Emptiness::ProvablyNonEmpty
            } else {
                Emptiness::Unknown
            },
            card: CardBounds::range(lo, self.card.hi),
            elems_tuples: self.elems_tuples,
            scopes_tuples: self.scopes_tuples,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `R |_σ A` (the receiver is `R`). The result is
    /// always a subset of `R`; an empty `σ` yields no witnesses, hence `∅`
    /// (law 7.1(e)).
    pub fn restrict_by(&self, sigma: &ExtendedSet, a: &AbstractSet) -> AbstractSet {
        if sigma.is_empty()
            || self.emptiness == Emptiness::ProvablyEmpty
            || a.emptiness == Emptiness::ProvablyEmpty
        {
            return AbstractSet::empty();
        }
        if let Some((r, av)) = self.both_exact(a) {
            return AbstractSet::folded(sigma_restrict(r, sigma, av));
        }
        AbstractSet {
            sig: self.sig.clone(),
            emptiness: Emptiness::Unknown,
            card: CardBounds::range(0, self.card.hi),
            elems_tuples: self.elems_tuples,
            scopes_tuples: self.scopes_tuples,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `𝔇_σ(R)`: every output member scope is the
    /// σ-projection of an input member scope, so the signature is the
    /// deterministic image of the input signature under re-scoping.
    pub fn domain_by(&self, sigma: &ExtendedSet) -> AbstractSet {
        if sigma.is_empty() || self.emptiness == Emptiness::ProvablyEmpty {
            return AbstractSet::empty();
        }
        if let Some(r) = self.exact.as_ref() {
            return AbstractSet::folded(sigma_domain(r, sigma));
        }
        AbstractSet {
            sig: self
                .sig
                .map(|w| Value::Set(rescope_value_by_scope(w, sigma))),
            emptiness: Emptiness::Unknown,
            card: CardBounds::range(0, self.card.hi),
            elems_tuples: false,
            scopes_tuples: false,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `R[A]_⟨σ1,σ2⟩ = 𝔇_σ2(R |_σ1 A)` (the receiver
    /// is `R`).
    pub fn image_with(&self, a: &AbstractSet, scope: &Scope) -> AbstractSet {
        if scope.sigma1.is_empty()
            || scope.sigma2.is_empty()
            || self.emptiness == Emptiness::ProvablyEmpty
            || a.emptiness == Emptiness::ProvablyEmpty
        {
            return AbstractSet::empty();
        }
        if let Some((r, av)) = self.both_exact(a) {
            return AbstractSet::folded(image(r, av, scope));
        }
        AbstractSet {
            sig: self
                .sig
                .map(|w| Value::Set(rescope_value_by_scope(w, &scope.sigma2))),
            emptiness: Emptiness::Unknown,
            card: CardBounds::range(0, self.card.hi),
            elems_tuples: false,
            scopes_tuples: false,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for the relative product (the receiver is `F`).
    /// Every output scope is `{s^{/σ1/} ∪ t^{/ω2/}}` for input scopes `s, t`,
    /// so the signature is the pairwise image of the operand signatures.
    pub fn rel_product_with(&self, sigma: &Scope, g: &AbstractSet, omega: &Scope) -> AbstractSet {
        if self.emptiness == Emptiness::ProvablyEmpty || g.emptiness == Emptiness::ProvablyEmpty {
            return AbstractSet::empty();
        }
        if let Some((f, gv)) = self.both_exact(g) {
            return AbstractSet::folded(relative_product(f, sigma, gv, omega));
        }
        let sig = match (&self.sig, &g.sig) {
            (ScopeSig::Finite(fs), ScopeSig::Finite(gs)) => {
                ScopeSig::finite(fs.iter().flat_map(|s| gs.iter().map(move |t| (s, t))).map(
                    |(s, t)| {
                        Value::Set(union(
                            &rescope_value_by_scope(s, &sigma.sigma1),
                            &rescope_value_by_scope(t, &omega.sigma2),
                        ))
                    },
                ))
            }
            _ => ScopeSig::Top,
        };
        AbstractSet {
            sig,
            emptiness: Emptiness::Unknown,
            card: CardBounds::range(0, CardBounds::hi_mul(self.card.hi, g.card.hi)),
            elems_tuples: false,
            scopes_tuples: false,
            exact: None,
        }
        .finish()
    }

    /// Transfer function for `A ⊗ B`, with a safety verdict: `⊗` is the one
    /// operator that can fail at runtime (scope collision / non-tuple in the
    /// generalized member product), so the analyzer must either prove it
    /// safe, prove it failing, or admit it cannot tell.
    pub fn cross_with(&self, other: &AbstractSet) -> CrossVerdict {
        if self.emptiness == Emptiness::ProvablyEmpty || other.emptiness == Emptiness::ProvablyEmpty
        {
            // Zero member pairs: the product never runs its fallible path.
            return CrossVerdict::Safe(AbstractSet::empty());
        }
        if let Some((a, b)) = self.both_exact(other) {
            return match cross(a, b) {
                Ok(r) => CrossVerdict::Safe(AbstractSet::folded(r)),
                Err(e) => CrossVerdict::Collision(e),
            };
        }
        let hi = CardBounds::hi_mul(self.card.hi, other.card.hi);
        let emptiness = match (self.emptiness, other.emptiness) {
            (Emptiness::ProvablyNonEmpty, Emptiness::ProvablyNonEmpty) => {
                Emptiness::ProvablyNonEmpty
            }
            _ => Emptiness::Unknown,
        };
        let lo = u64::from(emptiness == Emptiness::ProvablyNonEmpty);
        let all_tuples =
            self.elems_tuples && self.scopes_tuples && other.elems_tuples && other.scopes_tuples;
        if all_tuples {
            // Both member products take the concatenation path of
            // Definition 9.2, which is total on tuples.
            let sig = match (&self.sig, &other.sig) {
                (ScopeSig::Finite(xs), ScopeSig::Finite(ys)) => ScopeSig::finite(
                    xs.iter()
                        .flat_map(|s| ys.iter().map(move |t| (s, t)))
                        .filter_map(|(s, t)| {
                            concat(&s.as_set_view(), &t.as_set_view())
                                .ok()
                                .map(Value::Set)
                        }),
                ),
                _ => ScopeSig::Top,
            };
            return CrossVerdict::Safe(
                AbstractSet {
                    sig,
                    emptiness,
                    card: CardBounds::range(lo, hi),
                    elems_tuples: true,
                    scopes_tuples: true,
                    exact: None,
                }
                .finish(),
            );
        }
        CrossVerdict::Unproven(
            AbstractSet {
                sig: ScopeSig::Top,
                emptiness,
                card: CardBounds::range(lo, hi),
                elems_tuples: false,
                scopes_tuples: false,
                exact: None,
            }
            .finish(),
        )
    }

    /// One-line rendering used by `.explain` plan annotations.
    pub fn summary(&self) -> String {
        format!("sig={} card={} {}", self.sig, self.card, self.emptiness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::{xset, xtuple};

    #[test]
    fn from_set_is_exact_on_small_sets() {
        let s = xset!["a" => 1, "b" => 2];
        let a = AbstractSet::from_set(&s, DEFAULT_SCAN_CAP);
        assert_eq!(a.emptiness, Emptiness::ProvablyNonEmpty);
        assert_eq!(a.card, CardBounds::exact(2));
        assert!(a.sig.admits(&Value::Int(1)));
        assert!(!a.sig.admits(&Value::Int(3)));
        assert_eq!(a.exact, Some(s));
    }

    #[test]
    fn from_set_degrades_gracefully_past_the_scan_cap() {
        let s = ExtendedSet::classical((0..100).map(Value::Int));
        let a = AbstractSet::from_set(&s, 10);
        assert_eq!(a.sig, ScopeSig::Top);
        assert_eq!(a.card, CardBounds::exact(100));
        assert_eq!(a.emptiness, Emptiness::ProvablyNonEmpty);
        assert!(a.exact.is_none());
    }

    #[test]
    fn disjoint_sigs_prove_empty_intersection() {
        let a = AbstractSet::from_set(&xset!["a" => 1, "b" => 1], usize::MAX);
        let mut b = AbstractSet::from_set(&xset!["a" => 2], usize::MAX);
        b.exact = None; // force the signature path, not constant folding
        let mut a2 = a.clone();
        a2.exact = None;
        let meet = a2.intersect_with(&b);
        assert_eq!(meet.emptiness, Emptiness::ProvablyEmpty);
        assert_eq!(meet.card, CardBounds::exact(0));
    }

    #[test]
    fn union_bounds_and_sig() {
        let mut a = AbstractSet::from_set(&xset!["a" => 1], usize::MAX);
        let mut b = AbstractSet::from_set(&xset!["b" => 2], usize::MAX);
        a.exact = None;
        b.exact = None;
        let u = a.union_with(&b);
        assert_eq!(u.emptiness, Emptiness::ProvablyNonEmpty);
        assert_eq!(u.card, CardBounds::range(1, Some(2)));
        assert!(u.sig.admits(&Value::Int(1)));
        assert!(u.sig.admits(&Value::Int(2)));
    }

    #[test]
    fn constant_folding_tracks_exact_results() {
        let a = AbstractSet::from_set(&xset![1, 2, 3], usize::MAX);
        let b = AbstractSet::from_set(&xset![2, 3, 4], usize::MAX);
        let i = a.intersect_with(&b);
        assert_eq!(i.exact, Some(xset![2, 3]));
        assert_eq!(i.card, CardBounds::exact(2));
    }

    #[test]
    fn cross_of_tuple_sets_is_proven_safe() {
        let mut a = AbstractSet::from_set(&xset![xtuple!["a"].into_value()], usize::MAX);
        let mut b = AbstractSet::from_set(&xset![xtuple!["x"].into_value()], usize::MAX);
        a.exact = None;
        b.exact = None;
        assert!(a.elems_tuples && a.scopes_tuples);
        match a.cross_with(&b) {
            CrossVerdict::Safe(s) => {
                assert_eq!(s.emptiness, Emptiness::ProvablyNonEmpty);
                assert!(s.elems_tuples);
            }
            v => panic!("expected Safe, got {v:?}"),
        }
    }

    #[test]
    fn cross_collision_is_detected_on_exact_operands() {
        let a = AbstractSet::from_set(&xset![xset!["p" => 0].into_value()], usize::MAX);
        let b = AbstractSet::from_set(&xset![xset!["q" => 0].into_value()], usize::MAX);
        assert!(matches!(a.cross_with(&b), CrossVerdict::Collision(_)));
    }

    #[test]
    fn cross_with_unprovable_operands_is_unproven() {
        let a = AbstractSet::top();
        let b = AbstractSet::top();
        assert!(matches!(a.cross_with(&b), CrossVerdict::Unproven(_)));
    }

    #[test]
    fn empty_side_makes_cross_safe() {
        let a = AbstractSet::empty();
        let b = AbstractSet::top();
        match a.cross_with(&b) {
            CrossVerdict::Safe(s) => assert_eq!(s.emptiness, Emptiness::ProvablyEmpty),
            v => panic!("expected Safe, got {v:?}"),
        }
    }

    #[test]
    fn domain_sig_follows_rescoping() {
        // Members scoped ⟨A,Z⟩; 𝔇_⟨2⟩ projects scopes to {Z^1}.
        let r = xset![
            ExtendedSet::pair("a", "x").into_value() => xtuple!["A", "Z"].into_value()
        ];
        let mut ra = AbstractSet::from_set(&r, usize::MAX);
        ra.exact = None;
        let d = ra.domain_by(&xtuple![2]);
        let expected = Value::Set(xset!["Z" => 1]);
        assert!(d.sig.admits(&expected), "sig {}", d.sig);
    }

    #[test]
    fn difference_with_empty_is_identity() {
        let a = AbstractSet::from_set(&xset![1, 2], usize::MAX);
        let d = a.difference_with(&AbstractSet::empty());
        assert_eq!(d, a);
    }

    #[test]
    fn card_bounds_disjointness() {
        assert!(CardBounds::exact(3).disjoint(&CardBounds::exact(0)));
        assert!(!CardBounds::range(0, None).disjoint(&CardBounds::exact(7)));
        assert!(!CardBounds::range(2, Some(5)).disjoint(&CardBounds::range(5, Some(9))));
    }

    #[test]
    fn sig_widens_past_cap() {
        let wide = ScopeSig::finite((0..200).map(Value::Int));
        assert_eq!(wide, ScopeSig::Top);
    }

    #[test]
    fn displays_are_readable() {
        assert_eq!(Emptiness::ProvablyEmpty.to_string(), "provably-empty");
        assert_eq!(CardBounds::unknown().to_string(), "[0, ∞)");
        assert_eq!(ScopeSig::Top.to_string(), "⊤");
        let s = ScopeSig::finite([Value::Int(1)]);
        assert_eq!(s.to_string(), "{1}");
    }
}
