//! The bottom-up abstract-interpretation pass.
//!
//! [`analyze`] walks a plan once, computing an [`AbstractSet`] for every
//! node and collecting [`Diagnostic`]s along the way. The result is an
//! [`Analysis`]: the annotated node tree (same shape as the plan) plus the
//! diagnostic list and a `proved_safe` verdict.
//!
//! ## Gating policy
//!
//! Errors are reserved for plans that *provably* cannot evaluate: an
//! unbound table in a closed environment, or a cross product whose exact
//! operands demonstrably collide. Everything else — statically-empty
//! subplans, vacuous specifications, cross products that merely *might*
//! collide — is a warning, so gating on errors can never reject a plan
//! that used to evaluate successfully.

use std::collections::BTreeMap;

use crate::diag::{AnalysisError, DiagCode, Diagnostic, Severity};
use crate::lattice::{AbstractSet, CrossVerdict, Emptiness, DEFAULT_SCAN_CAP};
use crate::plan::{AbstractPlan, PlanShape};
use xst_core::ExtendedSet;

/// What the analyzer may assume about table bindings.
#[derive(Debug, Clone)]
pub struct AnalysisEnv {
    tables: BTreeMap<String, AbstractSet>,
    closed: bool,
    scan_cap: usize,
}

impl AnalysisEnv {
    /// A *closed* environment: the given bindings are all that will exist
    /// at evaluation time, so an unbound table is a definite error.
    pub fn closed() -> AnalysisEnv {
        AnalysisEnv {
            tables: BTreeMap::new(),
            closed: true,
            scan_cap: DEFAULT_SCAN_CAP,
        }
    }

    /// An *open* environment: tables not bound here may still be bound at
    /// evaluation time (used by the optimizer, which has no bindings).
    /// Unbound tables abstract to ⊤ and withdraw the safety proof.
    pub fn open() -> AnalysisEnv {
        AnalysisEnv {
            tables: BTreeMap::new(),
            closed: false,
            scan_cap: DEFAULT_SCAN_CAP,
        }
    }

    /// Override the member-scan budget used when abstracting concrete sets.
    pub fn with_scan_cap(mut self, cap: usize) -> AnalysisEnv {
        self.scan_cap = cap;
        self
    }

    /// Bind a table name to a concrete set (abstracted under the scan cap).
    pub fn bind(&mut self, name: impl Into<String>, set: &ExtendedSet) -> &mut Self {
        let a = AbstractSet::from_set(set, self.scan_cap);
        self.tables.insert(name.into(), a);
        self
    }

    /// The scan budget this environment abstracts concrete sets under.
    pub fn scan_cap(&self) -> usize {
        self.scan_cap
    }
}

/// One plan node's analysis result; the tree mirrors the plan's shape.
#[derive(Debug, Clone)]
pub struct AnalyzedNode {
    /// Everything known about this node's result.
    pub set: AbstractSet,
    /// Child nodes in plan order.
    pub children: Vec<AnalyzedNode>,
}

/// The result of analyzing one plan.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The annotated node tree (same shape as the plan).
    pub root: AnalyzedNode,
    /// All findings, in discovery (bottom-up, left-to-right) order.
    pub diagnostics: Vec<Diagnostic>,
    runtime_safe: bool,
}

impl Analysis {
    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Does analysis reject this plan (any error-severity diagnostic)?
    pub fn is_rejected(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Did the analyzer *prove* the plan evaluates without a runtime
    /// scope/type error? Requires no errors, no unproven cross products,
    /// and no tables left unresolved by an open environment.
    pub fn proved_safe(&self) -> bool {
        !self.is_rejected() && self.runtime_safe
    }

    /// The structured error to return from gated evaluation, if rejected.
    pub fn to_error(&self) -> Option<AnalysisError> {
        self.is_rejected().then(|| AnalysisError {
            diagnostics: self.diagnostics.clone(),
        })
    }
}

/// Analyze `plan` bottom-up under `env`.
pub fn analyze<P: AbstractPlan>(plan: &P, env: &AnalysisEnv) -> Analysis {
    let mut cx = Cx {
        env,
        diagnostics: Vec::new(),
        runtime_safe: true,
    };
    let root = cx.go(plan);
    Analysis {
        root,
        diagnostics: cx.diagnostics,
        runtime_safe: cx.runtime_safe,
    }
}

struct Cx<'e> {
    env: &'e AnalysisEnv,
    diagnostics: Vec<Diagnostic>,
    runtime_safe: bool,
}

impl Cx<'_> {
    fn go<P: AbstractPlan>(&mut self, plan: &P) -> AnalyzedNode {
        // `true` once a vacuous-spec warning already explains why this node
        // is empty, so the generic empty-subplan warning stays quiet.
        let mut spec_warned = false;
        let (set, children) = match plan.shape() {
            PlanShape::Literal(s) => (AbstractSet::from_set(s, self.env.scan_cap()), vec![]),
            PlanShape::Table(name) => match self.env.tables.get(name) {
                Some(a) => (a.clone(), vec![]),
                None if self.env.closed => {
                    self.diagnostics.push(Diagnostic::error(
                        DiagCode::UnboundTable,
                        plan.describe(),
                        format!("table `{name}` is not bound"),
                    ));
                    (AbstractSet::top(), vec![])
                }
                None => {
                    // Open environment: the table may be bound later; no
                    // diagnostic, but the safety proof is withdrawn.
                    self.runtime_safe = false;
                    (AbstractSet::top(), vec![])
                }
            },
            PlanShape::Union(a, b) => {
                let (x, y) = (self.go(a), self.go(b));
                (x.set.union_with(&y.set), vec![x, y])
            }
            PlanShape::Intersect(a, b) => {
                let (x, y) = (self.go(a), self.go(b));
                (x.set.intersect_with(&y.set), vec![x, y])
            }
            PlanShape::Difference(a, b) => {
                let (x, y) = (self.go(a), self.go(b));
                (x.set.difference_with(&y.set), vec![x, y])
            }
            PlanShape::Cross(a, b) => {
                let (x, y) = (self.go(a), self.go(b));
                let set = match x.set.cross_with(&y.set) {
                    CrossVerdict::Safe(s) => s,
                    CrossVerdict::Unproven(s) => {
                        self.runtime_safe = false;
                        self.diagnostics.push(Diagnostic::warning(
                            DiagCode::MaybeCrossCollision,
                            plan.describe(),
                            "cannot prove both operands are tuple-only; \
                             ⊗ may raise a scope collision at runtime",
                        ));
                        s
                    }
                    CrossVerdict::Collision(e) => {
                        self.diagnostics.push(Diagnostic::error(
                            DiagCode::CrossCollision,
                            plan.describe(),
                            format!("⊗ provably fails: {e}"),
                        ));
                        // Unknown emptiness on purpose: a provably-failing
                        // node must never be "optimized" into ∅.
                        AbstractSet::top()
                    }
                };
                (set, vec![x, y])
            }
            PlanShape::Restrict { r, sigma, a } => {
                let (x, y) = (self.go(r), self.go(a));
                if sigma.is_empty() {
                    spec_warned = true;
                    self.diagnostics.push(Diagnostic::warning(
                        DiagCode::VacuousSpec,
                        plan.describe(),
                        "restriction over σ = ∅ is vacuous: R |_∅ A = ∅",
                    ));
                }
                (x.set.restrict_by(sigma, &y.set), vec![x, y])
            }
            PlanShape::Domain { r, sigma } => {
                let x = self.go(r);
                if sigma.is_empty() {
                    spec_warned = true;
                    self.diagnostics.push(Diagnostic::warning(
                        DiagCode::VacuousSpec,
                        plan.describe(),
                        "domain over σ = ∅ is vacuous: 𝔇_∅(R) = ∅",
                    ));
                }
                (x.set.domain_by(sigma), vec![x])
            }
            PlanShape::Image { r, a, scope } => {
                let (x, y) = (self.go(r), self.go(a));
                if scope.sigma1.is_empty() || scope.sigma2.is_empty() {
                    spec_warned = true;
                    self.diagnostics.push(Diagnostic::warning(
                        DiagCode::VacuousSpec,
                        plan.describe(),
                        "image over an empty scope component is vacuous",
                    ));
                }
                (x.set.image_with(&y.set, scope), vec![x, y])
            }
            PlanShape::RelProduct { f, sigma, g, omega } => {
                let (x, y) = (self.go(f), self.go(g));
                (x.set.rel_product_with(sigma, &y.set, omega), vec![x, y])
            }
        };
        // Flag the *source* of provable emptiness: a node that is empty on
        // its own account, not one inheriting emptiness from a child or
        // spelled `∅` in the plan text.
        if set.emptiness == Emptiness::ProvablyEmpty
            && !spec_warned
            && !matches!(plan.shape(), PlanShape::Literal(_))
            && !children
                .iter()
                .any(|c| c.set.emptiness == Emptiness::ProvablyEmpty)
        {
            self.diagnostics.push(Diagnostic::warning(
                DiagCode::EmptySubplan,
                plan.describe(),
                "subplan provably evaluates to ∅",
            ));
        }
        AnalyzedNode { set, children }
    }
}
