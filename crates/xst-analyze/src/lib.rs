//! # xst-analyze — static analysis for XST query plans
//!
//! Abstract interpretation over the XST plan algebra. For every plan node
//! the analyzer infers, bottom-up and without evaluating anything:
//!
//! * a **scope signature** ([`ScopeSig`]) — a sound superset of the scopes
//!   the node's result members can carry (`x ∈_s A` makes this statically
//!   derivable for every operator);
//! * an **emptiness verdict** ([`Emptiness`]) — `ProvablyEmpty`,
//!   `ProvablyNonEmpty`, or `Unknown`;
//! * **cardinality bounds** ([`CardBounds`]);
//! * tuple-shape **proof flags** that establish cross-product safety
//!   (Definition 9.2's concatenation path is total on tuples);
//! * for small literal-only subplans, the **exact result** by bounded
//!   constant folding.
//!
//! Findings surface as structured [`Diagnostic`]s: *errors* for plans that
//! provably cannot evaluate (unbound tables, proven `⊗` collisions) and
//! *warnings* for suspicious-but-runnable plans (statically empty
//! subplans, vacuous `σ = ∅` specifications, unprovable cross-safety).
//! `xst-query` gates evaluation on the errors, prunes `ProvablyEmpty`
//! subplans in the optimizer, and uses [`verify_rewrite`] to machine-check
//! that every rewrite rule preserves the inferred signature.
//!
//! The crate deliberately depends only on `xst-core`: plans are walked
//! through the [`AbstractPlan`] trait so `xst-query` (which depends on
//! this crate) can feed its `Expr` in without a dependency cycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod diag;
pub mod lattice;
pub mod plan;
pub mod verify;

pub use analyze::{analyze, Analysis, AnalysisEnv, AnalyzedNode};
pub use diag::{AnalysisError, DiagCode, Diagnostic, Severity};
pub use lattice::{
    cross_safe, AbstractSet, CardBounds, CrossVerdict, Emptiness, ScopeSig, DEFAULT_SCAN_CAP,
    EXACT_CARD_CAP, SIG_WIDTH_CAP,
};
pub use plan::{AbstractPlan, PlanShape};
pub use verify::{check_signature_preserved, verify_rewrite, SignatureMismatch};
