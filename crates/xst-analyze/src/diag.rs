//! Structured analyzer diagnostics.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan provably cannot evaluate successfully; evaluation is
    /// rejected up front with an [`AnalysisError`].
    Error,
    /// The plan is suspicious (statically empty, vacuous specification,
    /// unprovable cross-safety) but may still evaluate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Machine-readable diagnostic categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// A `Table` node names a table absent from the bindings.
    UnboundTable,
    /// A `⊗` node provably raises a scope collision / non-tuple error.
    CrossCollision,
    /// A `⊗` node whose operands could not be proven cross-safe.
    MaybeCrossCollision,
    /// A subplan that provably evaluates to `∅` without being written `∅`.
    EmptySubplan,
    /// An operator given an empty specification set, making it vacuous
    /// (e.g. `R |_∅ A = ∅` by law 7.1(e)).
    VacuousSpec,
}

impl DiagCode {
    /// The stable kebab-case name used in rendered diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            DiagCode::UnboundTable => "unbound-table",
            DiagCode::CrossCollision => "cross-collision",
            DiagCode::MaybeCrossCollision => "maybe-cross-collision",
            DiagCode::EmptySubplan => "empty-subplan",
            DiagCode::VacuousSpec => "vacuous-spec",
        }
    }
}

/// One analyzer finding, anchored to a plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Machine-readable category.
    pub code: DiagCode,
    /// Rendering of the plan node the finding is anchored to.
    pub node: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(
        code: DiagCode,
        node: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            node: node.into(),
            message: message.into(),
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(
        code: DiagCode,
        node: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            node: node.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at `{}`: {}",
            self.severity,
            self.code.name(),
            self.node,
            self.message
        )
    }
}

/// The structured error returned when a plan is rejected by analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// Every diagnostic the analysis produced (errors and warnings).
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan rejected by static analysis")?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_with_code_and_node() {
        let d = Diagnostic::error(DiagCode::UnboundTable, "t", "unbound table t");
        assert_eq!(
            d.to_string(),
            "error[unbound-table] at `t`: unbound table t"
        );
        let e = AnalysisError {
            diagnostics: vec![d],
        };
        assert!(e.to_string().contains("rejected by static analysis"));
        assert!(e.to_string().contains("unbound-table"));
    }
}
