//! Frame layer: length-prefixed, CRC-guarded byte frames over any
//! `Read`/`Write` pair.
//!
//! A frame is the unit the TCP stream is cut into before any message
//! decoding happens:
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬─────────────┐
//! │ "XSTP"   │ len: u32 │ crc: u32 │ payload     │
//! │ 4 bytes  │ LE       │ LE       │ len bytes   │
//! └──────────┴──────────┴──────────┴─────────────┘
//! ```
//!
//! The CRC (same CRC-32 as the storage snapshot images) covers the
//! payload only, so header corruption and payload corruption are
//! distinguishable. Every way a frame can be malformed — wrong magic,
//! oversize length, truncation mid-header or mid-payload, checksum
//! mismatch — maps to a distinct [`FrameError`] variant; nothing in this
//! module panics and the oversize check runs *before* any allocation, so
//! a hostile length header cannot balloon memory.

use std::fmt;
use std::io::{Read, Write};
use xst_storage::snapshot::crc32;

/// Leading magic of every frame.
pub const MAGIC: [u8; 4] = *b"XSTP";

/// Hard cap on payload length (16 MiB). A header claiming more is
/// rejected as [`FrameError::Oversize`] without allocating.
pub const MAX_FRAME: u32 = 1 << 24;

/// Bytes of header before the payload: magic + len + crc.
pub const HEADER_LEN: usize = 12;

/// Everything that can go wrong reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The length header exceeded [`MAX_FRAME`].
    Oversize(u32),
    /// The payload did not match its checksum.
    BadCrc {
        /// CRC claimed by the header.
        claimed: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversize(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadCrc { claimed, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {claimed:#010x}, payload {actual:#010x}"
                )
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Fill `buf` from `r`. `Ok(false)` means the stream ended before the
/// first byte (a clean close if nothing was expected); ending after at
/// least one byte is [`FrameError::Truncated`].
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame, returning its payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Err(FrameError::Closed);
    }
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let claimed = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload)? && len > 0 {
        return Err(FrameError::Truncated);
    }
    let actual = crc32(&payload);
    if actual != claimed {
        return Err(FrameError::BadCrc { claimed, actual });
    }
    Ok(payload)
}

/// Encode one frame into a fresh buffer (header + payload).
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_FRAME as usize {
        return Err(FrameError::Oversize(payload.len() as u32));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one frame. A single `write_all` per frame keeps header and
/// payload in one TCP push.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_payloads() {
        for payload in [&b""[..], b"x", b"hello frames", &[0u8; 4096]] {
            let frame = encode_frame(payload).ok().unwrap_or_default();
            let got = read_frame(&mut Cursor::new(frame)).ok().unwrap_or_default();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn clean_eof_is_closed_and_partial_is_truncated() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(FrameError::Closed)
        ));
        let frame = encode_frame(b"abcdef").ok().unwrap_or_default();
        for cut in 1..frame.len() {
            assert!(
                matches!(
                    read_frame(&mut Cursor::new(frame[..cut].to_vec())),
                    Err(FrameError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_oversize_and_crc_are_distinct() {
        let mut frame = encode_frame(b"payload").ok().unwrap_or_default();
        frame[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(frame)),
            Err(FrameError::BadMagic(_))
        ));

        let mut frame = encode_frame(b"payload").ok().unwrap_or_default();
        frame[4..8].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(frame)),
            Err(FrameError::Oversize(_))
        ));

        let mut frame = encode_frame(b"payload").ok().unwrap_or_default();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut Cursor::new(frame)),
            Err(FrameError::BadCrc { .. })
        ));
    }
}
