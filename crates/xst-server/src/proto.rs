//! Message layer: typed requests and responses over frame payloads.
//!
//! Inside each [`crate::wire`] frame sits exactly one message, encoded
//! with a hand-rolled tagged binary format: one tag byte per variant,
//! little-endian fixed-width integers, and length-prefixed UTF-8 for
//! text. Extended sets travel as their **canonical display text** — the
//! same grammar `xst_core::parse_set` accepts — so the wire format
//! inherits the display↔parse round-trip property the core crate already
//! proves, and a captured frame is inspectable with nothing more than a
//! hex dump. [`xst_query::Expr`] trees are encoded structurally
//! (recursively, one tag per operator) with a decode-side depth cap so a
//! hostile payload cannot recurse the decoder off the stack.
//!
//! Decoding is total: every malformed payload maps to a structured
//! [`ProtoError`] — unknown tags, truncated fields, non-UTF-8 text,
//! unparseable sets, excess trailing bytes — and never panics.

use std::fmt;
use xst_core::parse::parse_set;
use xst_core::{ExtendedSet, Scope};
use xst_obs::TraceContext;
use xst_query::Expr;
use xst_storage::{FaultKind, FaultSchedule};

/// Protocol version sent in [`Request::Hello`] and echoed in
/// [`Response::Welcome`]. Bump on any wire-incompatible change.
///
/// v2 added distributed tracing: the [`Request::Traced`] wrapper
/// carrying a [`TraceContext`], plus the [`Request::TraceDump`] and
/// [`Request::RequestLog`] observability fetches. Every v1 message is
/// unchanged, so the server still seats v1 peers (see
/// [`MIN_PROTO_VERSION`]) — they simply run untraced.
pub const PROTO_VERSION: u32 = 2;

/// Oldest protocol version the server still accepts in the handshake.
/// The negotiated session version is the client's `Hello` version,
/// echoed back in [`Response::Welcome`].
pub const MIN_PROTO_VERSION: u32 = 1;

/// Maximum [`Expr`] nesting depth the decoder will follow.
pub const MAX_EXPR_DEPTH: usize = 64;

/// Everything that can go wrong decoding a message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before a field was complete.
    Truncated,
    /// Bytes remained after the message was fully decoded.
    Trailing(usize),
    /// An unknown tag byte where `what` was expected.
    BadTag {
        /// Which tagged union was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A set's display text failed to parse back.
    BadSet(String),
    /// An [`Expr`] nested deeper than [`MAX_EXPR_DEPTH`].
    TooDeep,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message payload truncated"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::BadSet(e) => write!(f, "set text failed to parse: {e}"),
            ProtoError::TooDeep => {
                write!(f, "expression nests deeper than {MAX_EXPR_DEPTH} levels")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Machine-readable classification of a [`Response::Error`]. The codes
/// are the client's dispatch surface: `TxnConflict` is what
/// first-committer-wins looks like over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame or message (decode-side failure).
    Protocol,
    /// Handshake version mismatch.
    Version,
    /// Rejected by admission control (server at capacity).
    Admission,
    /// Operand text failed to parse.
    Parse,
    /// The static-analysis gate rejected the plan.
    Analysis,
    /// Evaluation failed at runtime.
    Eval,
    /// Request illegal in the session's current transaction state.
    TxnState,
    /// Commit lost first-committer-wins validation.
    TxnConflict,
    /// A storage-layer failure (I/O, corruption, unknown table).
    Storage,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    const ALL: [ErrorCode; 10] = [
        ErrorCode::Protocol,
        ErrorCode::Version,
        ErrorCode::Admission,
        ErrorCode::Parse,
        ErrorCode::Analysis,
        ErrorCode::Eval,
        ErrorCode::TxnState,
        ErrorCode::TxnConflict,
        ErrorCode::Storage,
        ErrorCode::Internal,
    ];

    /// Stable display name (used in error text and the shell).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Version => "version",
            ErrorCode::Admission => "admission",
            ErrorCode::Parse => "parse",
            ErrorCode::Analysis => "analysis",
            ErrorCode::Eval => "eval",
            ErrorCode::TxnState => "txn-state",
            ErrorCode::TxnConflict => "txn-conflict",
            ErrorCode::Storage => "storage",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured server-side error, as carried by [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed.
    pub code: ErrorCode,
    /// The table involved, when the failure names one (conflicts do).
    pub table: Option<String>,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error with no table attribution.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            table: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{} [{t}]: {}", self.code, self.message),
            None => write!(f, "{}: {}", self.code, self.message),
        }
    }
}

/// One client request. The variants mirror the shell's command surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open the session: version handshake. Must be the first request.
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u32,
        /// Free-form client identification, for diagnostics.
        client: String,
    },
    /// Liveness probe.
    Ping,
    /// Evaluate an expression against the session's snapshot.
    Eval {
        /// The plan to run.
        expr: Expr,
    },
    /// Statically analyze an expression without running it.
    Check {
        /// The plan to analyze.
        expr: Expr,
    },
    /// Optimize + execute and return the per-operator report.
    Explain {
        /// The plan to explain.
        expr: Expr,
    },
    /// Open an explicit transaction (error if one is already open).
    Begin,
    /// Commit the open transaction.
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Insert every member of `set` as a `(element, scope)` record of
    /// `table` — buffered in the open transaction, else autocommitted.
    Put {
        /// Target table.
        table: String,
        /// Members to insert.
        set: ExtendedSet,
    },
    /// Delete every member of `set` from `table`.
    Delete {
        /// Target table.
        table: String,
        /// Members to delete.
        set: ExtendedSet,
    },
    /// Read a table's visible identity (rows as scoped tuples).
    Get {
        /// Table to read.
        table: String,
    },
    /// Metrics exposition (Prometheus text, or JSON).
    Metrics {
        /// `true` for the JSON form.
        json: bool,
    },
    /// Arm the served engine's deterministic fault plan — the hook the
    /// crash-at-commit-site battery drives across the wire.
    ArmFaults {
        /// When to inject.
        schedule: FaultSchedule,
        /// What to inject.
        kind: FaultKind,
    },
    /// Disarm and clear any armed fault plan.
    ClearFaults,
    /// A request annotated with the client's trace context (v2+): the
    /// server adopts `ctx` while handling `req`, so every server-side
    /// span stitches under the client's trace. Never nests.
    Traced {
        /// The trace the server-side spans should join.
        ctx: TraceContext,
        /// The request to handle under that trace.
        req: Box<Request>,
    },
    /// Fetch the server's collected spans as an `xst-trace/1` JSON
    /// document (v2+), answered with [`Response::Report`].
    TraceDump,
    /// Fetch the server's structured request log (v2+), answered with a
    /// rendered [`Response::Report`] table.
    RequestLog {
        /// `true` for the threshold-gated slow ring, `false` for the
        /// slowest retained requests (the `.top` ranking).
        slow: bool,
        /// Most records to return.
        limit: u32,
    },
    /// Read the shard-local **fragment** of `table` this server owns —
    /// the member set, not the row-tuple identity — through the
    /// session's visible snapshot (v2+; the scatter half of the wire
    /// coordinator's scatter-gather). Answered with [`Response::Value`].
    FragRead {
        /// Table whose local fragment to read.
        table: String,
    },
    /// **Phase one of wire 2PC** (v2+): consume the session's open
    /// transaction and stage its writes as a durable prepare tagged with
    /// the coordinator's global transaction id. After this the session
    /// has no open transaction — a disconnect no longer aborts the
    /// writes; they await [`Request::Decide`] or [`Request::Resolve`].
    Prepare {
        /// The coordinator's global transaction id.
        gtxn: u64,
    },
    /// **Phase two of wire 2PC** (v2+): deliver the coordinator's
    /// already-durable decision for a prepared transaction.
    Decide {
        /// The global transaction id the decision names.
        gtxn: u64,
        /// `true` publishes the prepared writes; `false` drops them.
        commit: bool,
    },
    /// Resolve **every** transaction still prepared on this server
    /// against the coordinator's committed set: named gtxns publish,
    /// all others abort (presumed abort). Sent by a recovering or
    /// reconnecting coordinator (v2+).
    Resolve {
        /// Every committed gtxn the coordinator's decision log records.
        committed: Vec<u64>,
    },
}

impl Request {
    /// Stable request-kind name, for the request log and span
    /// attributes. A [`Request::Traced`] wrapper reports its inner kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Eval { .. } => "eval",
            Request::Check { .. } => "check",
            Request::Explain { .. } => "explain",
            Request::Begin => "begin",
            Request::Commit => "commit",
            Request::Abort => "abort",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Get { .. } => "get",
            Request::Metrics { .. } => "metrics",
            Request::ArmFaults { .. } => "arm-faults",
            Request::ClearFaults => "clear-faults",
            Request::Traced { req, .. } => req.kind_name(),
            Request::TraceDump => "trace-dump",
            Request::RequestLog { .. } => "request-log",
            Request::FragRead { .. } => "frag-read",
            Request::Prepare { .. } => "prepare",
            Request::Decide { .. } => "decide",
            Request::Resolve { .. } => "resolve",
        }
    }

    /// Short free-form detail for the request log: the table a request
    /// names, if any.
    pub fn detail(&self) -> String {
        match self {
            Request::Put { table, .. }
            | Request::Delete { table, .. }
            | Request::Get { table }
            | Request::FragRead { table } => table.clone(),
            Request::Prepare { gtxn } | Request::Decide { gtxn, .. } => format!("gtxn {gtxn}"),
            Request::Traced { req, .. } => req.detail(),
            _ => String::new(),
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// The server's [`PROTO_VERSION`].
        version: u32,
        /// Server identification banner.
        banner: String,
    },
    /// Liveness reply.
    Pong,
    /// An evaluated set.
    Value {
        /// The result identity.
        set: ExtendedSet,
    },
    /// A rendered text report (check/explain/metrics).
    Report {
        /// The report body.
        text: String,
    },
    /// An explicit transaction is now open.
    TxnBegun {
        /// Its transaction id.
        id: u64,
        /// The commit timestamp its snapshot reads from.
        snapshot_ts: u64,
    },
    /// A put/delete was applied.
    Applied {
        /// Rows the request touched.
        rows: u64,
        /// The commit timestamp, when the request autocommitted
        /// (`None` while buffered inside an explicit transaction).
        autocommit_ts: Option<u64>,
    },
    /// The open transaction committed.
    Committed {
        /// Its commit timestamp.
        ts: u64,
    },
    /// The open transaction aborted.
    Aborted,
    /// The fault plan is armed (or cleared, for `armed == false`).
    FaultsArmed {
        /// Whether a plan is now armed.
        armed: bool,
    },
    /// The request failed; the session survives (except version and
    /// admission errors, after which the server closes the stream).
    Error(WireError),
    /// A [`Request::Prepare`] staged a durable prepare (v2+).
    Prepared {
        /// The global transaction id, echoed for sanity.
        gtxn: u64,
        /// Local shards that flushed a prepare (0 = the transaction was
        /// read-only here and there is nothing to decide).
        participants: u64,
    },
    /// A [`Request::Decide`] was applied (v2+).
    Decided {
        /// Whether the decision was commit.
        committed: bool,
        /// The local commit timestamp (0 for an abort).
        ts: u64,
    },
    /// A [`Request::Resolve`] swept the prepared set (v2+).
    Resolved {
        /// In-doubt transactions published as committed.
        committed: u64,
        /// In-doubt transactions dropped (presumed abort).
        aborted: u64,
    },
}

impl Response {
    /// Stable outcome name for the request log: `"ok"`, or the error
    /// code name for [`Response::Error`].
    pub fn outcome(&self) -> &'static str {
        match self {
            Response::Error(e) => e.code.name(),
            _ => "ok",
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_set(out: &mut Vec<u8>, s: &ExtendedSet) {
    put_str(out, &s.to_string());
}

fn put_scope(out: &mut Vec<u8>, s: &Scope) {
    put_set(out, &s.sigma1);
    put_set(out, &s.sigma2);
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Literal(s) => {
            out.push(0);
            put_set(out, s);
        }
        Expr::Table(name) => {
            out.push(1);
            put_str(out, name);
        }
        Expr::Union(a, b) => {
            out.push(2);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Intersect(a, b) => {
            out.push(3);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Difference(a, b) => {
            out.push(4);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Restrict { r, sigma, a } => {
            out.push(5);
            put_expr(out, r);
            put_set(out, sigma);
            put_expr(out, a);
        }
        Expr::Domain { r, sigma } => {
            out.push(6);
            put_expr(out, r);
            put_set(out, sigma);
        }
        Expr::Image { r, a, scope } => {
            out.push(7);
            put_expr(out, r);
            put_expr(out, a);
            put_scope(out, scope);
        }
        Expr::RelProduct { f, sigma, g, omega } => {
            out.push(8);
            put_expr(out, f);
            put_scope(out, sigma);
            put_expr(out, g);
            put_scope(out, omega);
        }
        Expr::Cross(a, b) => {
            out.push(9);
            put_expr(out, a);
            put_expr(out, b);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding primitives.
// ---------------------------------------------------------------------------

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtoError::BadTag { what, tag }),
        }
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn set(&mut self) -> Result<ExtendedSet, ProtoError> {
        let text = self.str()?;
        parse_set(&text).map_err(|e| ProtoError::BadSet(e.to_string()))
    }

    fn scope(&mut self) -> Result<Scope, ProtoError> {
        let sigma1 = self.set()?;
        let sigma2 = self.set()?;
        Ok(Scope::new(sigma1, sigma2))
    }

    fn expr(&mut self, depth: usize) -> Result<Expr, ProtoError> {
        if depth >= MAX_EXPR_DEPTH {
            return Err(ProtoError::TooDeep);
        }
        let d = depth + 1;
        Ok(match self.u8()? {
            0 => Expr::Literal(self.set()?),
            1 => Expr::Table(self.str()?),
            2 => Expr::Union(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            3 => Expr::Intersect(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            4 => Expr::Difference(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            5 => Expr::Restrict {
                r: Box::new(self.expr(d)?),
                sigma: self.set()?,
                a: Box::new(self.expr(d)?),
            },
            6 => Expr::Domain {
                r: Box::new(self.expr(d)?),
                sigma: self.set()?,
            },
            7 => Expr::Image {
                r: Box::new(self.expr(d)?),
                a: Box::new(self.expr(d)?),
                scope: self.scope()?,
            },
            8 => Expr::RelProduct {
                f: Box::new(self.expr(d)?),
                sigma: self.scope()?,
                g: Box::new(self.expr(d)?),
                omega: self.scope()?,
            },
            9 => Expr::Cross(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            tag => return Err(ProtoError::BadTag { what: "expr", tag }),
        })
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left > 0 {
            return Err(ProtoError::Trailing(left));
        }
        Ok(())
    }
}

fn put_schedule(out: &mut Vec<u8>, s: &FaultSchedule) {
    match s {
        FaultSchedule::AtSite(k) => {
            out.push(0);
            put_u64(out, *k);
        }
        FaultSchedule::EveryNth(k) => {
            out.push(1);
            put_u64(out, *k);
        }
    }
}

fn put_kind(out: &mut Vec<u8>, k: &FaultKind) {
    match k {
        FaultKind::WriteFail => out.push(0),
        FaultKind::TornWrite(n) => {
            out.push(1);
            put_u64(out, *n as u64);
        }
        FaultKind::ShortRead(n) => {
            out.push(2);
            put_u64(out, *n as u64);
        }
        FaultKind::SyncFail => out.push(3),
        FaultKind::Transient => out.push(4),
    }
}

impl Rd<'_> {
    fn schedule(&mut self) -> Result<FaultSchedule, ProtoError> {
        Ok(match self.u8()? {
            0 => FaultSchedule::AtSite(self.u64()?),
            1 => FaultSchedule::EveryNth(self.u64()?),
            tag => {
                return Err(ProtoError::BadTag {
                    what: "fault schedule",
                    tag,
                })
            }
        })
    }

    fn kind(&mut self) -> Result<FaultKind, ProtoError> {
        Ok(match self.u8()? {
            0 => FaultKind::WriteFail,
            1 => FaultKind::TornWrite(self.u64()? as usize),
            2 => FaultKind::ShortRead(self.u64()? as usize),
            3 => FaultKind::SyncFail,
            4 => FaultKind::Transient,
            tag => {
                return Err(ProtoError::BadTag {
                    what: "fault kind",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Message codecs.
// ---------------------------------------------------------------------------

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello { version, client } => {
                out.push(0);
                put_u32(out, *version);
                put_str(out, client);
            }
            Request::Ping => out.push(1),
            Request::Eval { expr } => {
                out.push(2);
                put_expr(out, expr);
            }
            Request::Check { expr } => {
                out.push(3);
                put_expr(out, expr);
            }
            Request::Explain { expr } => {
                out.push(4);
                put_expr(out, expr);
            }
            Request::Begin => out.push(5),
            Request::Commit => out.push(6),
            Request::Abort => out.push(7),
            Request::Put { table, set } => {
                out.push(8);
                put_str(out, table);
                put_set(out, set);
            }
            Request::Delete { table, set } => {
                out.push(9);
                put_str(out, table);
                put_set(out, set);
            }
            Request::Get { table } => {
                out.push(10);
                put_str(out, table);
            }
            Request::Metrics { json } => {
                out.push(11);
                out.push(u8::from(*json));
            }
            Request::ArmFaults { schedule, kind } => {
                out.push(12);
                put_schedule(out, schedule);
                put_kind(out, kind);
            }
            Request::ClearFaults => out.push(13),
            Request::Traced { ctx, req } => {
                out.push(14);
                put_u64(out, ctx.trace_id);
                put_u64(out, ctx.parent_span);
                req.encode_into(out);
            }
            Request::TraceDump => out.push(15),
            Request::RequestLog { slow, limit } => {
                out.push(16);
                out.push(u8::from(*slow));
                put_u32(out, *limit);
            }
            Request::FragRead { table } => {
                out.push(17);
                put_str(out, table);
            }
            Request::Prepare { gtxn } => {
                out.push(18);
                put_u64(out, *gtxn);
            }
            Request::Decide { gtxn, commit } => {
                out.push(19);
                put_u64(out, *gtxn);
                out.push(u8::from(*commit));
            }
            Request::Resolve { committed } => {
                out.push(20);
                put_u32(out, committed.len() as u32);
                for g in committed {
                    put_u64(out, *g);
                }
            }
        }
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut rd = Rd::new(payload);
        let req = Request::decode_body(&mut rd, true)?;
        rd.finish()?;
        Ok(req)
    }

    /// Decode one request body. `allow_traced` is false when decoding
    /// the inner request of a [`Request::Traced`] wrapper, so a hostile
    /// payload cannot nest wrappers (and carries no recursion risk).
    fn decode_body(rd: &mut Rd, allow_traced: bool) -> Result<Request, ProtoError> {
        let req = match rd.u8()? {
            0 => Request::Hello {
                version: rd.u32()?,
                client: rd.str()?,
            },
            1 => Request::Ping,
            2 => Request::Eval { expr: rd.expr(0)? },
            3 => Request::Check { expr: rd.expr(0)? },
            4 => Request::Explain { expr: rd.expr(0)? },
            5 => Request::Begin,
            6 => Request::Commit,
            7 => Request::Abort,
            8 => Request::Put {
                table: rd.str()?,
                set: rd.set()?,
            },
            9 => Request::Delete {
                table: rd.str()?,
                set: rd.set()?,
            },
            10 => Request::Get { table: rd.str()? },
            11 => Request::Metrics {
                json: rd.bool("metrics form")?,
            },
            12 => Request::ArmFaults {
                schedule: rd.schedule()?,
                kind: rd.kind()?,
            },
            13 => Request::ClearFaults,
            14 if allow_traced => {
                let ctx = TraceContext {
                    trace_id: rd.u64()?,
                    parent_span: rd.u64()?,
                };
                let req = Request::decode_body(rd, false)?;
                Request::Traced {
                    ctx,
                    req: Box::new(req),
                }
            }
            14 => {
                return Err(ProtoError::BadTag {
                    what: "nested traced request",
                    tag: 14,
                })
            }
            15 => Request::TraceDump,
            16 => Request::RequestLog {
                slow: rd.bool("slow flag")?,
                limit: rd.u32()?,
            },
            17 => Request::FragRead { table: rd.str()? },
            18 => Request::Prepare { gtxn: rd.u64()? },
            19 => Request::Decide {
                gtxn: rd.u64()?,
                commit: rd.bool("decide flag")?,
            },
            20 => {
                let n = rd.u32()? as usize;
                // Bound the pre-allocation by what the payload can hold
                // (8 bytes per id), so a hostile length cannot balloon.
                let mut committed = Vec::with_capacity(n.min(rd.remaining() / 8 + 1));
                for _ in 0..n {
                    committed.push(rd.u64()?);
                }
                Request::Resolve { committed }
            }
            tag => {
                return Err(ProtoError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Welcome { version, banner } => {
                out.push(0);
                put_u32(&mut out, *version);
                put_str(&mut out, banner);
            }
            Response::Pong => out.push(1),
            Response::Value { set } => {
                out.push(2);
                put_set(&mut out, set);
            }
            Response::Report { text } => {
                out.push(3);
                put_str(&mut out, text);
            }
            Response::TxnBegun { id, snapshot_ts } => {
                out.push(4);
                put_u64(&mut out, *id);
                put_u64(&mut out, *snapshot_ts);
            }
            Response::Applied {
                rows,
                autocommit_ts,
            } => {
                out.push(5);
                put_u64(&mut out, *rows);
                match autocommit_ts {
                    None => out.push(0),
                    Some(ts) => {
                        out.push(1);
                        put_u64(&mut out, *ts);
                    }
                }
            }
            Response::Committed { ts } => {
                out.push(6);
                put_u64(&mut out, *ts);
            }
            Response::Aborted => out.push(7),
            Response::FaultsArmed { armed } => {
                out.push(8);
                out.push(u8::from(*armed));
            }
            Response::Error(e) => {
                out.push(9);
                out.push(e.code as u8);
                match &e.table {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        put_str(&mut out, t);
                    }
                }
                put_str(&mut out, &e.message);
            }
            Response::Prepared { gtxn, participants } => {
                out.push(10);
                put_u64(&mut out, *gtxn);
                put_u64(&mut out, *participants);
            }
            Response::Decided { committed, ts } => {
                out.push(11);
                out.push(u8::from(*committed));
                put_u64(&mut out, *ts);
            }
            Response::Resolved { committed, aborted } => {
                out.push(12);
                put_u64(&mut out, *committed);
                put_u64(&mut out, *aborted);
            }
        }
        out
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut rd = Rd::new(payload);
        let resp = match rd.u8()? {
            0 => Response::Welcome {
                version: rd.u32()?,
                banner: rd.str()?,
            },
            1 => Response::Pong,
            2 => Response::Value { set: rd.set()? },
            3 => Response::Report { text: rd.str()? },
            4 => Response::TxnBegun {
                id: rd.u64()?,
                snapshot_ts: rd.u64()?,
            },
            5 => Response::Applied {
                rows: rd.u64()?,
                autocommit_ts: if rd.bool("option tag")? {
                    Some(rd.u64()?)
                } else {
                    None
                },
            },
            6 => Response::Committed { ts: rd.u64()? },
            7 => Response::Aborted,
            8 => Response::FaultsArmed {
                armed: rd.bool("armed flag")?,
            },
            9 => {
                let code_tag = rd.u8()?;
                let code = *ErrorCode::ALL
                    .get(code_tag as usize)
                    .ok_or(ProtoError::BadTag {
                        what: "error code",
                        tag: code_tag,
                    })?;
                let table = if rd.bool("option tag")? {
                    Some(rd.str()?)
                } else {
                    None
                };
                Response::Error(WireError {
                    code,
                    table,
                    message: rd.str()?,
                })
            }
            10 => Response::Prepared {
                gtxn: rd.u64()?,
                participants: rd.u64()?,
            },
            11 => Response::Decided {
                committed: rd.bool("decided flag")?,
                ts: rd.u64()?,
            },
            12 => Response::Resolved {
                committed: rd.u64()?,
                aborted: rd.u64()?,
            },
            tag => {
                return Err(ProtoError::BadTag {
                    what: "response",
                    tag,
                })
            }
        };
        rd.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::xset;

    #[test]
    fn request_round_trips() {
        let exprs = [
            Expr::table("t"),
            Expr::lit(xset![1, 2]).union(Expr::table("u")),
            Expr::table("r").restrict(xset![1], Expr::lit(xset![3])),
        ];
        let mut reqs = vec![
            Request::Hello {
                version: PROTO_VERSION,
                client: "test".into(),
            },
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::Put {
                table: "t".into(),
                set: xset![1, 2, 3],
            },
            Request::Delete {
                table: "t".into(),
                set: xset![2],
            },
            Request::Get { table: "t".into() },
            Request::Metrics { json: true },
            Request::Metrics { json: false },
            Request::ArmFaults {
                schedule: FaultSchedule::AtSite(7),
                kind: FaultKind::TornWrite(37),
            },
            Request::ClearFaults,
            Request::FragRead { table: "t".into() },
            Request::Prepare { gtxn: 42 },
            Request::Decide {
                gtxn: 42,
                commit: true,
            },
            Request::Decide {
                gtxn: 43,
                commit: false,
            },
            Request::Resolve { committed: vec![] },
            Request::Resolve {
                committed: vec![1, 7, u64::MAX],
            },
        ];
        for e in exprs {
            reqs.push(Request::Eval { expr: e.clone() });
            reqs.push(Request::Check { expr: e.clone() });
            reqs.push(Request::Explain { expr: e });
        }
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Welcome {
                version: PROTO_VERSION,
                banner: "xst-server".into(),
            },
            Response::Pong,
            Response::Value { set: xset![1, 2] },
            Response::Report {
                text: "line 1\nline 2".into(),
            },
            Response::TxnBegun {
                id: 3,
                snapshot_ts: 9,
            },
            Response::Applied {
                rows: 4,
                autocommit_ts: Some(5),
            },
            Response::Applied {
                rows: 0,
                autocommit_ts: None,
            },
            Response::Committed { ts: 11 },
            Response::Aborted,
            Response::FaultsArmed { armed: true },
            Response::Error(WireError {
                code: ErrorCode::TxnConflict,
                table: Some("t".into()),
                message: "first committer won".into(),
            }),
            Response::Prepared {
                gtxn: 42,
                participants: 1,
            },
            Response::Decided {
                committed: true,
                ts: 9,
            },
            Response::Decided {
                committed: false,
                ts: 0,
            },
            Response::Resolved {
                committed: 2,
                aborted: 3,
            },
        ];
        for resp in resps {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn deep_expressions_are_rejected_not_overflowed() {
        let mut e = Expr::table("t");
        for _ in 0..(MAX_EXPR_DEPTH * 4) {
            e = e.union(Expr::table("t"));
        }
        let payload = Request::Eval { expr: e }.encode();
        assert_eq!(Request::decode(&payload), Err(ProtoError::TooDeep));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_structured() {
        let payload = Request::Get { table: "t".into() }.encode();
        for cut in 0..payload.len() {
            let err = Request::decode(&payload[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::BadTag { .. }),
                "cut {cut}: {err:?}"
            );
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert_eq!(Request::decode(&extended), Err(ProtoError::Trailing(1)));
    }
}
