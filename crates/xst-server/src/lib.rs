//! # xst-server — the network front end of the XST engine
//!
//! Childs' 1977 program pitches extended set theory as the foundation of
//! *very large, distributed, backend information systems* serving many
//! concurrent consumers. Until this crate, the reproduction stopped at an
//! in-process shell: one user, one address space. `xst-server` turns the
//! engine into that backend — a TCP server any number of clients can
//! reach, each with its own transactional session over one shared
//! [`TxnManager`](xst_storage::TxnManager) version chain.
//!
//! The stack, bottom to top:
//!
//! * [`wire`] — length-prefixed, CRC-guarded frames. Every way a frame
//!   can be malformed is a distinct structured error; oversize lengths
//!   are rejected before allocation.
//! * [`proto`] — typed [`Request`]/[`Response`] messages inside frames.
//!   Sets travel as their canonical display text (the round-trip the
//!   core crate property-proves); expressions are encoded structurally
//!   with a decode-side depth cap.
//! * [`session`] — per-connection dispatch over the shared
//!   [`ServedEngine`]: snapshot-isolated transactions with autocommit
//!   default, read-your-own-writes, abort-on-disconnect, and the armable
//!   deterministic fault plan that makes the acknowledged⇒recoverable
//!   contract testable across the wire.
//! * [`server`] — the accept loop: thread-per-connection, a configurable
//!   session cap with a bounded admission queue (backpressure), typed
//!   rejection, and deterministic shutdown. Accept/reject/active/queue
//!   state is exported through the `xst_server_*` metric families.
//!
//! The companion `xst-client` crate is the blocking typed client every
//! test and the shell drive this server through. Nothing in this crate
//! panics on untrusted input — `xst-lint`'s no-panic rule covers it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod proto;
pub mod server;
pub mod session;
pub mod wire;

pub use proto::{
    ErrorCode, ProtoError, Request, Response, WireError, MIN_PROTO_VERSION, PROTO_VERSION,
};
pub use server::{Server, ServerConfig};
pub use session::{member_schema, records_identity_to_set, set_to_records, ServedEngine, Session};
pub use wire::{encode_frame, read_frame, write_frame, FrameError, MAGIC, MAX_FRAME};
