//! The TCP dispatcher: accept loop, admission control, thread-per-
//! connection sessions.
//!
//! A [`Server`] owns one listening socket and one shared
//! [`ServedEngine`]. Each accepted connection runs on its own thread:
//! it first passes the **admission gate** — at most `max_sessions`
//! concurrent sessions, with up to `max_queued` connections parked on a
//! condition variable for a bounded wait (backpressure) — then performs
//! the versioned handshake and enters the frame→decode→dispatch→reply
//! loop. Connections the gate cannot seat are answered with a typed
//! [`ErrorCode::Admission`] frame and closed, and counted in
//! `xst_server_admission_rejected_total`.
//!
//! Every connection registers its stream in a slab so [`Server::stop`]
//! can `shutdown(2)` all of them: blocked reads return, session threads
//! abort their open transactions and exit, and `stop` joins them —
//! shutdown is deterministic, not best-effort.
//!
//! The accept/admit/active/queue-depth state is exported through the
//! `xst_server_*` metric families registered in `xst_obs::names`.

use crate::proto::{ErrorCode, Request, Response, WireError, MIN_PROTO_VERSION, PROTO_VERSION};
use crate::session::{ServedEngine, Session};
use crate::wire::{read_frame, write_frame, FrameError};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use xst_obs::{registry, Counter, Gauge, Histogram};

fn accepted_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SERVER_ACCEPTED_TOTAL,
            "Connections accepted by the server (admitted into a session).",
        )
    })
}

fn admission_rejected_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SERVER_ADMISSION_REJECTED_TOTAL,
            "Connections rejected by admission control (cap and queue both full).",
        )
    })
}

fn active_sessions_gauge() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        registry().gauge(
            xst_obs::names::SERVER_ACTIVE_SESSIONS,
            "Sessions currently open.",
        )
    })
}

fn queue_depth_gauge() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        registry().gauge(
            xst_obs::names::SERVER_QUEUE_DEPTH,
            "Connections waiting in the admission queue for a session slot.",
        )
    })
}

fn requests_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SERVER_REQUESTS_TOTAL,
            "Requests served across all sessions.",
        )
    })
}

fn protocol_errors_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SERVER_PROTOCOL_ERRORS_TOTAL,
            "Malformed frames / protocol violations answered with a structured error.",
        )
    })
}

fn request_ns_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::SERVER_REQUEST_NS,
            "Latency of handling one request (decode, dispatch, encode).",
        )
    })
}

/// Tuning knobs for one [`Server`] instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent session cap.
    pub max_sessions: usize,
    /// Connections allowed to wait for a slot before rejection.
    pub max_queued: usize,
    /// Longest a queued connection waits before it is rejected.
    pub queue_wait: Duration,
    /// Banner echoed in the [`Response::Welcome`].
    pub banner: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 16,
            max_queued: 16,
            queue_wait: Duration::from_secs(2),
            banner: "xst-server".to_string(),
        }
    }
}

/// Admission state: seated sessions and parked (queued) connections.
struct GateState {
    active: usize,
    waiting: usize,
}

/// The admission gate: a counter pair under a mutex, with a condition
/// variable parking connections that wait for a slot. Poisoning is
/// recovered (the state is two counters; there is no invariant a panic
/// mid-critical-section could break).
struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            state: Mutex::new(GateState {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// Try to seat a session: immediately if under the cap, else by
    /// waiting up to `cfg.queue_wait` in the bounded queue. Returns
    /// whether the connection was admitted.
    fn admit(&self, cfg: &ServerConfig, shutdown: &AtomicBool) -> bool {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.active < cfg.max_sessions {
            st.active += 1;
            publish_gate(&st);
            return true;
        }
        if st.waiting >= cfg.max_queued {
            return false;
        }
        st.waiting += 1;
        publish_gate(&st);
        let deadline = Instant::now() + cfg.queue_wait;
        let admitted = loop {
            if shutdown.load(Ordering::SeqCst) {
                break false;
            }
            if st.active < cfg.max_sessions {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            // Short slices so a server shutdown is noticed promptly even
            // if the notify races the wait.
            let slice = (deadline - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .freed
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        };
        st.waiting -= 1;
        if admitted {
            st.active += 1;
        }
        publish_gate(&st);
        admitted
    }

    /// A session ended: free its slot and wake one queued connection.
    fn release(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.active -= 1;
        publish_gate(&st);
        drop(st);
        self.freed.notify_one();
    }
}

/// Mirror the gate counters onto their gauges.
fn publish_gate(st: &GateState) {
    if xst_obs::enabled() {
        active_sessions_gauge().set(st.active as f64);
        queue_depth_gauge().set(st.waiting as f64);
    }
}

/// State shared between the accept loop and every session thread.
struct Shared {
    engine: Arc<ServedEngine>,
    config: ServerConfig,
    gate: Gate,
    shutdown: AtomicBool,
    /// Live streams by connection id, so `stop` can unblock their reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        let clone = stream.try_clone().ok()?;
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }
}

/// A running server: owns the accept thread and joins every session
/// thread on [`Server::stop`] (also run by `Drop`).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `engine` under `config`.
    pub fn start(
        engine: Arc<ServedEngine>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            gate: Gate::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<ServedEngine> {
        &self.shared.engine
    }

    /// Stop accepting, unblock and join every session, release the port.
    /// Idempotent.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.gate.freed.notify_all();
        // Unblock every session read; the threads then exit on their own.
        let conns: Vec<TcpStream> = {
            let mut map = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            map.drain().map(|(_, s)| s).collect()
        };
        for s in conns {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accept connections until shutdown, spawning one handler thread each;
/// join the handlers before returning so `stop` implies quiescence.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_shared)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        // Reap finished handlers so a long-lived server does not
        // accumulate joinable thread stubs.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

/// One connection, start to finish: admission, handshake, request loop,
/// cleanup. Never panics; every exit path aborts the session's open
/// transaction and releases its admission slot.
fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if !shared.gate.admit(&shared.config, &shared.shutdown) {
        if xst_obs::enabled() {
            admission_rejected_total().inc();
        }
        write_response(
            &mut stream,
            &Response::Error(WireError::new(
                ErrorCode::Admission,
                format!(
                    "server at capacity ({} sessions); retry later",
                    shared.config.max_sessions
                ),
            )),
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if xst_obs::enabled() {
        accepted_total().inc();
    }
    let conn_id = shared.register(&stream);
    // 1-based session id so 0 stays "not a served connection" in the
    // request log.
    let session_id = conn_id.map_or(0, |id| id + 1);
    serve_session(&mut stream, &shared, session_id);
    if let Some(id) = conn_id {
        shared.deregister(id);
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared.gate.release();
}

/// The handshake and request loop for one admitted connection.
fn serve_session(stream: &mut TcpStream, shared: &Shared, session_id: u64) {
    // Handshake: the first frame must be a version-compatible Hello.
    // Any version in [MIN_PROTO_VERSION, PROTO_VERSION] is seated and
    // echoed back, so a v1 peer keeps working — it simply never sends
    // the v2 tracing requests.
    let hello = match read_frame(stream) {
        Ok(payload) => payload,
        Err(FrameError::Closed | FrameError::Truncated | FrameError::Io(_)) => return,
        Err(e) => {
            if xst_obs::enabled() {
                protocol_errors_total().inc();
            }
            write_response(
                stream,
                &Response::Error(WireError::new(ErrorCode::Protocol, e.to_string())),
            );
            return;
        }
    };
    let negotiated = match Request::decode(&hello) {
        Ok(Request::Hello { version, .. })
            if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) =>
        {
            if !write_response(
                stream,
                &Response::Welcome {
                    version,
                    banner: shared.config.banner.clone(),
                },
            ) {
                return;
            }
            version
        }
        Ok(Request::Hello { version, .. }) => {
            if xst_obs::enabled() {
                protocol_errors_total().inc();
            }
            write_response(
                stream,
                &Response::Error(WireError::new(
                    ErrorCode::Version,
                    format!(
                        "server speaks protocol v{MIN_PROTO_VERSION}..v{PROTO_VERSION}, \
                         client sent v{version}"
                    ),
                )),
            );
            return;
        }
        Ok(_) | Err(_) => {
            if xst_obs::enabled() {
                protocol_errors_total().inc();
            }
            write_response(
                stream,
                &Response::Error(WireError::new(
                    ErrorCode::Protocol,
                    "first request must be Hello",
                )),
            );
            return;
        }
    };

    let mut session = Session::with_version(Arc::clone(&shared.engine), session_id, negotiated);
    loop {
        let payload = match read_frame(stream) {
            Ok(p) => p,
            // Clean close or peer death: end the session silently.
            Err(FrameError::Closed | FrameError::Truncated | FrameError::Io(_)) => break,
            // Frame-level corruption desyncs the stream: answer with a
            // structured error, then close (there is no way to find the
            // next frame boundary).
            Err(
                e @ (FrameError::BadMagic(_) | FrameError::Oversize(_) | FrameError::BadCrc { .. }),
            ) => {
                if xst_obs::enabled() {
                    protocol_errors_total().inc();
                }
                write_response(
                    stream,
                    &Response::Error(WireError::new(ErrorCode::Protocol, e.to_string())),
                );
                break;
            }
        };
        let start = Instant::now();
        let resp = match Request::decode(&payload) {
            Ok(req) => {
                if xst_obs::enabled() {
                    requests_total().inc();
                }
                session.serve_one(req)
            }
            // A well-framed but undecodable message: the stream is still
            // in sync, so the session survives the structured error.
            Err(e) => {
                if xst_obs::enabled() {
                    protocol_errors_total().inc();
                }
                Response::Error(WireError::new(ErrorCode::Protocol, e.to_string()))
            }
        };
        if xst_obs::enabled() {
            request_ns_hist().observe_since(start);
        }
        if !write_response(stream, &resp) {
            break;
        }
    }
    // Abort-on-disconnect: whatever ended the loop, the session's open
    // transaction must not outlive the connection.
    session.close();
}
