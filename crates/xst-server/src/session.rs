//! Per-connection sessions over a shared [`ServedEngine`].
//!
//! One [`Session`] exists per admitted connection. Every session holds
//! at most one open [`ShardedTxn`] against the engine's shared
//! [`ShardedEngine`] — *shared* is the point: first-committer-wins
//! conflicts between clients are real conflicts on one version chain,
//! not artifacts of separate databases. Outside an explicit `Begin`,
//! writes autocommit (each request is its own transaction), mirroring
//! the shell. A session that ends for any reason — clean close,
//! truncated stream, I/O error — aborts its open transaction, so a dead
//! client can never pin a snapshot.
//!
//! The engine is sharded ([`ServedEngine::with_shards`]); the default
//! single-shard deployment behaves exactly like the pre-sharding engine
//! (one write path, one WAL flush per commit). Queries evaluate by
//! scatter-gather over per-shard table fragments, and multi-shard
//! commits run two-phase commit under the engine's coordinator.
//!
//! Request handling is total: every failure maps to a
//! [`Response::Error`] with a machine-readable [`ErrorCode`], and the
//! session survives all of them except transport-level desync. In
//! particular a commit that loses first-committer-wins validation
//! surfaces as [`ErrorCode::TxnConflict`] with the table attributed —
//! the wire image of [`StorageError::TxnConflict`].

use crate::proto::{ErrorCode, Request, Response, WireError, PROTO_VERSION};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xst_core::ops::Parallelism;
use xst_core::{ExtendedSet, SetBuilder, XstError};
use xst_obs::{registry, Counter};
use xst_query::{eval_sharded, explain_analyze, merge_bindings, Bindings, Expr, ShardedBindings};
use xst_storage::{
    FaultKind, FaultSchedule, Record, Schema, ShardedEngine, ShardedTxn, Storage, StorageError,
    TxnManager, Wal,
};

/// Schema of every served table: one row per set member, element and
/// scope columns (the same layout the shell's `.put` uses).
pub fn member_schema() -> Schema {
    Schema::new(["element", "scope"])
}

/// Flatten a set into `(element, scope)` records, one per member.
pub fn set_to_records(set: &ExtendedSet) -> Vec<Record> {
    set.members()
        .iter()
        .map(|m| Record::new([m.element.clone(), m.scope.clone()]))
        .collect()
}

/// Rebuild the member set a table's row-tuple identity denotes — the
/// inverse of [`set_to_records`] composed with the record identity.
pub fn records_identity_to_set(identity: &ExtendedSet) -> Result<ExtendedSet, String> {
    let mut b = SetBuilder::new();
    for m in identity.members() {
        let Some(tuple) = m.element.as_set() else {
            return Err("table row is not a tuple".to_string());
        };
        match tuple.as_tuple().as_deref() {
            Some([element, scope]) => {
                b.scoped(element.clone(), scope.clone());
            }
            _ => return Err("table row is not an element/scope pair".to_string()),
        }
    }
    Ok(b.build())
}

/// The one engine a server instance serves: a [`ShardedEngine`]
/// (storage, WAL, transaction manager, and 2PC coordinator per shard),
/// plus the armable deterministic fault plan that lets the crash battery
/// reach the engine's I/O sites across the wire.
pub struct ServedEngine {
    sharded: ShardedEngine,
}

impl ServedEngine {
    /// A fresh single-shard engine over a fresh simulated disk — the
    /// pre-sharding serving behavior, one write path and one WAL flush
    /// per commit.
    pub fn new() -> ServedEngine {
        ServedEngine::with_shards(1)
    }

    /// A fresh engine over `shards` independent engine+WAL pairs; writes
    /// route by member hash, queries scatter-gather, and multi-shard
    /// commits run two-phase commit.
    pub fn with_shards(shards: usize) -> ServedEngine {
        ServedEngine {
            sharded: ShardedEngine::with_shards(shards),
        }
    }

    /// The sharded engine underneath (every session's txns come from
    /// here; its gauges are how tests observe snapshot-pinning leaks).
    pub fn sharded(&self) -> &ShardedEngine {
        &self.sharded
    }

    /// Number of shards this engine partitions tables across.
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Shard 0's transaction manager — the whole engine on the default
    /// single-shard deployment. Kept for tests and tools that inspect
    /// the manager directly.
    pub fn mgr(&self) -> &TxnManager {
        self.sharded.shard_mgr(0)
    }

    /// Shard 0's simulated disk (the whole disk when single-shard).
    pub fn storage(&self) -> &Storage {
        self.sharded.shard_storage(0)
    }

    /// Shard 0's WAL handle (the whole WAL when single-shard).
    pub fn wal(&self) -> &Wal {
        self.sharded.shard_wal(0)
    }

    /// Create `name` with the served [`member_schema`] if it does not
    /// exist yet (first `Put` wins; concurrent creates are benign).
    pub fn ensure_table(&self, name: &str) {
        let _ = self.sharded.create_table(name, member_schema());
    }

    /// Arm a deterministic fault plan on every shard's storage *and* WAL
    /// plus the coordinator's (one shared site counter, as in the
    /// in-process crash harnesses).
    pub fn arm_faults(&self, schedule: FaultSchedule, kind: FaultKind) {
        self.sharded.arm_faults(schedule, kind);
    }

    /// Disarm and drop any armed plan.
    pub fn clear_faults(&self) {
        self.sharded.clear_faults();
    }

    /// Is a fault plan currently armed?
    pub fn faults_armed(&self) -> bool {
        self.sharded.faults_armed()
    }

    /// Faults injected by the armed plan so far, if any.
    pub fn faults_injected(&self) -> u64 {
        self.sharded.faults_injected()
    }

    /// Crash-test helper: clear faults, drop unacknowledged staged WAL
    /// state on every device (the crash), and rebuild an engine from
    /// durable state alone — in-doubt prepares resolved against the
    /// coordinator's decision log. What this returns is what a
    /// post-crash restart would see. `catalog` registers any tables the
    /// engine was never told about in-process (registration is
    /// in-memory metadata, so re-registering is benign).
    pub fn recover(&self, catalog: &[(&str, Schema)]) -> Result<ShardedEngine, StorageError> {
        self.recover_with_decisions(catalog, &std::collections::BTreeSet::new())
    }

    /// Like [`ServedEngine::recover`], but resolving in-doubt prepares
    /// against an **external** wire coordinator's committed set as well
    /// as the local decision log — how a shard process restarts under a
    /// remote coordinator without presumed-aborting decided prepares.
    pub fn recover_with_decisions(
        &self,
        catalog: &[(&str, Schema)],
        committed: &std::collections::BTreeSet<u64>,
    ) -> Result<ShardedEngine, StorageError> {
        for (name, schema) in catalog {
            let _ = self.sharded.create_table(name, schema.clone());
        }
        self.sharded.recover_with_decisions(committed)
    }

    /// Global transaction ids prepared here and awaiting an external
    /// coordinator's decision.
    pub fn prepared_gtxns(&self) -> Vec<u64> {
        self.sharded.prepared_external()
    }
}

impl Default for ServedEngine {
    fn default() -> Self {
        ServedEngine::new()
    }
}

/// Map a storage failure onto the wire: conflicts keep their code and
/// table attribution, everything else is [`ErrorCode::Storage`].
fn storage_error(e: StorageError) -> Response {
    let (code, table) = match &e {
        StorageError::TxnConflict { table, .. } => (ErrorCode::TxnConflict, Some(table.clone())),
        _ => (ErrorCode::Storage, None),
    };
    Response::Error(WireError {
        code,
        table,
        message: e.to_string(),
    })
}

/// Map an algebra/query failure onto the wire.
fn xst_error(e: XstError) -> Response {
    let code = match &e {
        XstError::Parse { .. } => ErrorCode::Parse,
        XstError::Analysis { .. } => ErrorCode::Analysis,
        _ => ErrorCode::Eval,
    };
    Response::Error(WireError::new(code, e.to_string()))
}

fn txn_state_error(message: &str) -> Response {
    Response::Error(WireError::new(ErrorCode::TxnState, message))
}

fn traced_requests_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SERVER_TRACED_REQUESTS_TOTAL,
            "Requests that arrived wrapped in a client trace context.",
        )
    })
}

/// One connection's dispatch state: the shared engine plus at most one
/// open transaction.
pub struct Session {
    engine: Arc<ServedEngine>,
    open: Option<ShardedTxn>,
    /// Diagnostic session id carried into spans and the request log
    /// (0 = not a served connection).
    id: u64,
    /// The protocol version the handshake negotiated. The v2-only
    /// coordinator requests (frag-read and the 2PC round) are rejected
    /// with a structured protocol error on a v1 session.
    version: u32,
}

impl Session {
    /// A session over `engine` with no transaction open.
    pub fn new(engine: Arc<ServedEngine>) -> Session {
        Session::with_id(engine, 0)
    }

    /// A session carrying a diagnostic `id` (the server uses the
    /// connection id, 1-based so 0 stays "not a served connection").
    pub fn with_id(engine: Arc<ServedEngine>, id: u64) -> Session {
        Session::with_version(engine, id, PROTO_VERSION)
    }

    /// A session pinned to the handshake-negotiated protocol `version`
    /// (the server seats v1 peers; they must not reach v2-only kinds).
    pub fn with_version(engine: Arc<ServedEngine>, id: u64, version: u32) -> Session {
        Session {
            engine,
            open: None,
            id,
            version,
        }
    }

    /// This session's diagnostic id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Is an explicit transaction open?
    pub fn in_txn(&self) -> bool {
        self.open.is_some()
    }

    /// End the session: abort any open transaction so the connection's
    /// snapshot is released. Called on every disconnect path.
    pub fn close(&mut self) {
        if let Some(txn) = self.open.take() {
            txn.abort();
        }
    }

    /// Bind every table `expr` names to the session's visible per-shard
    /// fragments: the open transaction's snapshot (plus its own writes)
    /// if one is open, else the latest commit. Unknown tables stay
    /// unbound so the static-analysis gate reports them as structured
    /// diagnostics.
    fn fragments_for(&mut self, expr: &Expr) -> Result<ShardedBindings, Response> {
        let names: Vec<String> = expr.tables().iter().map(|n| n.to_string()).collect();
        let mut b = ShardedBindings::new();
        for name in names {
            let frags = match &mut self.open {
                Some(txn) => txn.read_fragments(&name),
                None => self.engine.sharded.latest_fragments(&name),
            };
            match frags {
                Ok(parts) => {
                    b.insert(name, parts);
                }
                Err(StorageError::SchemaMismatch { .. }) => {} // unbound: the gate reports it
                Err(e) => return Err(storage_error(e)),
            }
        }
        Ok(b)
    }

    /// The gathered (whole-set) bindings, for paths that need unsharded
    /// views (static checks, `EXPLAIN ANALYZE`).
    fn bindings_for(&mut self, expr: &Expr) -> Result<Bindings, Response> {
        Ok(merge_bindings(&self.fragments_for(expr)?))
    }

    fn eval(&mut self, expr: Expr) -> Response {
        let b = match self.fragments_for(&expr) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        match eval_sharded(&expr, &b, &Parallelism::sequential()) {
            Ok((set, _stats)) => Response::Value { set },
            Err(e) => xst_error(e),
        }
    }

    fn check(&mut self, expr: Expr) -> Response {
        let b = match self.bindings_for(&expr) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let analysis = xst_query::check(&expr, &b);
        let mut text = format!(
            "rejected: {}\nproved safe: {}\n",
            analysis.is_rejected(),
            analysis.proved_safe()
        );
        for d in &analysis.diagnostics {
            text.push_str(&format!("  {d}\n"));
        }
        Response::Report { text }
    }

    fn explain(&mut self, expr: Expr) -> Response {
        let b = match self.bindings_for(&expr) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        match explain_analyze(&expr, &b, &Parallelism::sequential()) {
            Ok(report) => Response::Report {
                text: report.to_string(),
            },
            Err(e) => xst_error(e),
        }
    }

    fn begin(&mut self) -> Response {
        if self.open.is_some() {
            return txn_state_error("a transaction is already open (commit or abort it)");
        }
        let txn = self.engine.sharded.begin();
        let resp = Response::TxnBegun {
            id: txn.id(),
            snapshot_ts: txn.begin_ts(),
        };
        self.open = Some(txn);
        resp
    }

    fn commit(&mut self) -> Response {
        let Some(txn) = self.open.take() else {
            return txn_state_error("no open transaction (begin first)");
        };
        match txn.commit() {
            Ok(ts) => Response::Committed { ts },
            Err(e) => storage_error(e),
        }
    }

    fn abort(&mut self) -> Response {
        let Some(txn) = self.open.take() else {
            return txn_state_error("no open transaction (begin first)");
        };
        txn.abort();
        Response::Aborted
    }

    fn put(&mut self, table: String, set: ExtendedSet) -> Response {
        self.engine.ensure_table(&table);
        let records = set_to_records(&set);
        match &mut self.open {
            Some(txn) => {
                for r in &records {
                    if let Err(e) = txn.insert(&table, r.clone()) {
                        return storage_error(e);
                    }
                }
                Response::Applied {
                    rows: records.len() as u64,
                    autocommit_ts: None,
                }
            }
            None => match self.engine.sharded.autocommit_insert(&table, &records) {
                Ok(ts) => Response::Applied {
                    rows: records.len() as u64,
                    autocommit_ts: Some(ts),
                },
                Err(e) => storage_error(e),
            },
        }
    }

    fn delete(&mut self, table: String, set: ExtendedSet) -> Response {
        let records = set_to_records(&set);
        match &mut self.open {
            Some(txn) => {
                for r in &records {
                    if let Err(e) = txn.delete(&table, r.clone()) {
                        return storage_error(e);
                    }
                }
                Response::Applied {
                    rows: records.len() as u64,
                    autocommit_ts: None,
                }
            }
            None => {
                let mut txn = self.engine.sharded.begin();
                for r in &records {
                    if let Err(e) = txn.delete(&table, r.clone()) {
                        txn.abort();
                        return storage_error(e);
                    }
                }
                match txn.commit() {
                    Ok(ts) => Response::Applied {
                        rows: records.len() as u64,
                        autocommit_ts: Some(ts),
                    },
                    Err(e) => storage_error(e),
                }
            }
        }
    }

    fn get(&mut self, table: String) -> Response {
        let identity = match &mut self.open {
            Some(txn) => txn.read_identity(&table),
            None => self.engine.sharded.latest_identity(&table),
        };
        match identity {
            Ok(set) => Response::Value { set },
            Err(e) => storage_error(e),
        }
    }

    /// Coordinator read path: the raw local fragment of `table` — this
    /// shard's members only, no gather — as a set identity.
    fn frag_read(&mut self, table: String) -> Response {
        let identity = match &mut self.open {
            Some(txn) => txn.read_identity(&table),
            None => self.engine.sharded.latest_identity(&table),
        };
        match identity {
            Ok(set) => match records_identity_to_set(&set) {
                Ok(set) => Response::Value { set },
                Err(msg) => Response::Error(WireError::new(ErrorCode::Internal, msg)),
            },
            Err(e) => storage_error(e),
        }
    }

    /// 2PC phase one: seal the session's open transaction as an
    /// in-doubt prepare under the coordinator's global id. The open
    /// transaction is **consumed** — after a successful prepare the
    /// session has no open transaction, and a disconnect no longer
    /// aborts the staged writes (only Decide/Resolve settles them).
    fn prepare(&mut self, gtxn: u64) -> Response {
        let Some(txn) = self.open.take() else {
            return txn_state_error("no open transaction to prepare (begin first)");
        };
        match self.engine.sharded.prepare_external(txn, gtxn) {
            Ok(participants) => Response::Prepared {
                gtxn,
                participants: participants as u64,
            },
            Err(e) => storage_error(e),
        }
    }

    /// 2PC phase two: apply the coordinator's durable decision to a
    /// prepared transaction. Commit errors are real (the marker write
    /// can fail); aborting an unknown gtxn is a no-op by design — the
    /// coordinator resolves liberally after recovery.
    fn decide(&mut self, gtxn: u64, commit: bool) -> Response {
        if commit {
            match self.engine.sharded.commit_external(gtxn) {
                Ok(ts) => Response::Decided {
                    committed: true,
                    ts,
                },
                Err(e) => storage_error(e),
            }
        } else {
            self.engine.sharded.abort_external(gtxn);
            Response::Decided {
                committed: false,
                ts: 0,
            }
        }
    }

    /// Settle every in-doubt prepare on this shard against the
    /// coordinator's committed set: commit the named ones, presume
    /// abort for the rest.
    fn resolve(&mut self, committed: Vec<u64>) -> Response {
        let committed: std::collections::BTreeSet<u64> = committed.into_iter().collect();
        match self.engine.sharded.resolve_external(&committed) {
            Ok((committed, aborted)) => Response::Resolved { committed, aborted },
            Err(e) => storage_error(e),
        }
    }

    /// Reject a v2-only request on a session negotiated below v2.
    fn v2_only(&self, kind: &str) -> Option<Response> {
        (self.version < 2).then(|| {
            Response::Error(WireError::new(
                ErrorCode::Protocol,
                format!(
                    "{kind} requires protocol v2 (session negotiated v{})",
                    self.version
                ),
            ))
        })
    }

    fn metrics(&self, json: bool) -> Response {
        let text = if json {
            xst_obs::registry().export_json()
        } else {
            xst_obs::registry().export_prometheus()
        };
        Response::Report { text }
    }

    fn trace_dump(&self) -> Response {
        Response::Report {
            text: xst_obs::export_trace_json(&xst_obs::collector().snapshot_spans()),
        }
    }

    fn request_log(&self, slow: bool, limit: u32) -> Response {
        let log = xst_obs::request_log();
        let limit = (limit as usize).max(1);
        let records = if slow {
            log.slow(limit)
        } else {
            log.top(limit)
        };
        Response::Report {
            text: xst_obs::reqlog::render_records(&records),
        }
    }

    /// Handle one request with full observability: peel and adopt any
    /// carried [`TraceContext`] (so the request's spans join the remote
    /// trace), open the `session.request` span, meter the request's
    /// resource bill, and append a structured record to the request
    /// log. This is the entry the server's request loop uses; `handle`
    /// is the bare dispatch underneath it.
    pub fn serve_one(&mut self, req: Request) -> Response {
        let (ctx, req) = match req {
            Request::Traced { ctx, req } => (Some(ctx), *req),
            other => (None, other),
        };
        let _adopted = ctx.map(|ctx| {
            if xst_obs::enabled() {
                traced_requests_total().inc();
            }
            xst_obs::span::adopt(ctx)
        });
        let kind = req.kind_name();
        let detail = req.detail();
        let timer = xst_obs::enabled().then(Instant::now);
        let costs = xst_obs::cost::begin();
        let span = xst_obs::span!("session.request", session = self.id, kind = kind);
        let txn_before = self.open.as_ref().map(ShardedTxn::id);
        let resp = self.handle(req);
        let trace_id = span.trace_id().unwrap_or(0);
        drop(span);
        let cost = costs.take();
        if let Some(start) = timer {
            xst_obs::request_log().record(xst_obs::RequestRecord {
                seq: 0,
                session: self.id,
                txn: txn_before.or_else(|| self.open.as_ref().map(ShardedTxn::id)),
                kind,
                detail,
                trace_id,
                wall_ns: start.elapsed().as_nanos() as u64,
                cost,
                outcome: resp.outcome(),
            });
        }
        resp
    }

    /// Dispatch one already-decoded request. Total: every outcome is a
    /// [`Response`]; this function never panics and never closes the
    /// session itself.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Hello { .. } => Response::Error(WireError::new(
                ErrorCode::Protocol,
                format!("handshake already complete (protocol v{PROTO_VERSION})"),
            )),
            Request::Ping => Response::Pong,
            Request::Eval { expr } => self.eval(expr),
            Request::Check { expr } => self.check(expr),
            Request::Explain { expr } => self.explain(expr),
            Request::Begin => self.begin(),
            Request::Commit => self.commit(),
            Request::Abort => self.abort(),
            Request::Put { table, set } => self.put(table, set),
            Request::Delete { table, set } => self.delete(table, set),
            Request::Get { table } => self.get(table),
            Request::FragRead { table } => self
                .v2_only("frag-read")
                .unwrap_or_else(|| self.frag_read(table)),
            Request::Prepare { gtxn } => self
                .v2_only("prepare")
                .unwrap_or_else(|| self.prepare(gtxn)),
            Request::Decide { gtxn, commit } => self
                .v2_only("decide")
                .unwrap_or_else(|| self.decide(gtxn, commit)),
            Request::Resolve { committed } => self
                .v2_only("resolve")
                .unwrap_or_else(|| self.resolve(committed)),
            Request::Metrics { json } => self.metrics(json),
            Request::ArmFaults { schedule, kind } => {
                self.engine.arm_faults(schedule, kind);
                Response::FaultsArmed { armed: true }
            }
            Request::ClearFaults => {
                self.engine.clear_faults();
                Response::FaultsArmed { armed: false }
            }
            // A Traced wrapper reaching bare dispatch (tests, defensive
            // callers) still adopts its context around the inner
            // request; `serve_one` normally peels it first so the
            // request span itself joins the trace.
            // lint: version-gate: a v1 peer cannot encode Traced, so none arrives to gate; the inner request is dispatched on its own merits
            Request::Traced { ctx, req } => {
                let _adopted = xst_obs::span::adopt(ctx);
                self.handle(*req)
            }
            // lint: version-gate: read-only observability dump — harmless if reached, and v1 peers cannot encode the request
            Request::TraceDump => self.trace_dump(),
            // lint: version-gate: read-only request-log view — harmless if reached, and v1 peers cannot encode the request
            Request::RequestLog { slow, limit } => self.request_log(slow, limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::xset;

    fn session() -> Session {
        Session::new(Arc::new(ServedEngine::new()))
    }

    #[test]
    fn autocommit_put_then_get_round_trips_members() {
        let mut s = session();
        let set = xset![1, 2, 3];
        let resp = s.handle(Request::Put {
            table: "t".into(),
            set: set.clone(),
        });
        assert!(
            matches!(
                resp,
                Response::Applied {
                    rows: 3,
                    autocommit_ts: Some(_)
                }
            ),
            "{resp:?}"
        );
        let Response::Value { set: identity } = s.handle(Request::Get { table: "t".into() }) else {
            unreachable!()
        };
        assert_eq!(records_identity_to_set(&identity), Ok(set));
    }

    #[test]
    fn ryow_inside_txn_and_invisible_outside() {
        let engine = Arc::new(ServedEngine::new());
        let mut a = Session::new(Arc::clone(&engine));
        let mut b = Session::new(Arc::clone(&engine));
        assert!(matches!(
            a.handle(Request::Begin),
            Response::TxnBegun { .. }
        ));
        a.handle(Request::Put {
            table: "t".into(),
            set: xset![7],
        });
        // A sees its own write...
        let Response::Value { set } = a.handle(Request::Get { table: "t".into() }) else {
            unreachable!()
        };
        assert_eq!(set.card(), 1);
        // ...B does not, until A commits.
        let Response::Value { set } = b.handle(Request::Get { table: "t".into() }) else {
            unreachable!()
        };
        assert!(set.is_empty());
        assert!(matches!(
            a.handle(Request::Commit),
            Response::Committed { .. }
        ));
        let Response::Value { set } = b.handle(Request::Get { table: "t".into() }) else {
            unreachable!()
        };
        assert_eq!(set.card(), 1);
    }

    #[test]
    fn conflicting_commit_maps_to_txn_conflict_code() {
        let engine = Arc::new(ServedEngine::new());
        let mut a = Session::new(Arc::clone(&engine));
        let mut b = Session::new(Arc::clone(&engine));
        engine.ensure_table("t");
        a.handle(Request::Begin);
        b.handle(Request::Begin);
        a.handle(Request::Put {
            table: "t".into(),
            set: xset![1],
        });
        b.handle(Request::Put {
            table: "t".into(),
            set: xset![1],
        });
        assert!(matches!(
            a.handle(Request::Commit),
            Response::Committed { .. }
        ));
        let resp = b.handle(Request::Commit);
        let Response::Error(e) = resp else {
            unreachable!("second committer must conflict: {resp:?}")
        };
        assert_eq!(e.code, ErrorCode::TxnConflict);
        assert_eq!(e.table.as_deref(), Some("t"));
    }

    #[test]
    fn eval_over_unknown_table_is_an_analysis_error() {
        let mut s = session();
        let resp = s.handle(Request::Eval {
            expr: Expr::table("missing"),
        });
        let Response::Error(e) = resp else {
            unreachable!()
        };
        assert_eq!(e.code, ErrorCode::Analysis);
        assert!(e.message.contains("unbound-table"), "{}", e.message);
    }

    #[test]
    fn multi_shard_engine_serves_the_same_answers_as_single_shard() {
        let sharded = Arc::new(ServedEngine::with_shards(3));
        let plain = Arc::new(ServedEngine::new());
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(plain.shard_count(), 1);
        let nums = |range: &mut dyn Iterator<Item = i64>| {
            let mut b = SetBuilder::new();
            for k in range {
                b.classical_elem(k);
            }
            b.build()
        };
        let big = nums(&mut (0..64));
        let odd = nums(&mut (0..64).filter(|k| k % 2 == 1));
        for engine in [&sharded, &plain] {
            let mut s = Session::new(Arc::clone(engine));
            s.handle(Request::Put {
                table: "big".into(),
                set: big.clone(),
            });
            s.handle(Request::Begin);
            s.handle(Request::Put {
                table: "odd".into(),
                set: odd.clone(),
            });
            assert!(matches!(
                s.handle(Request::Commit),
                Response::Committed { .. }
            ));
        }
        let expr = Expr::table("big").intersect(Expr::table("odd"));
        let mut answers = Vec::new();
        for engine in [&sharded, &plain] {
            let mut s = Session::new(Arc::clone(engine));
            let Response::Value { set } = s.handle(Request::Eval { expr: expr.clone() }) else {
                unreachable!()
            };
            answers.push(set);
        }
        assert_eq!(answers[0], answers[1]);
        // The sharded engine's table really is spread: Get gathers the
        // full identity back.
        let mut s = Session::new(Arc::clone(&sharded));
        let Response::Value { set } = s.handle(Request::Get {
            table: "big".into(),
        }) else {
            unreachable!()
        };
        assert_eq!(records_identity_to_set(&set), Ok(big));
    }

    #[test]
    fn close_aborts_the_open_txn() {
        let engine = Arc::new(ServedEngine::new());
        let mut s = Session::new(Arc::clone(&engine));
        s.handle(Request::Begin);
        assert_eq!(engine.mgr().active_txns(), 1);
        s.close();
        assert_eq!(engine.mgr().active_txns(), 0);
    }
}
