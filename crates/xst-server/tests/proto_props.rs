//! The protocol codec battery: round-trip properties over adversarial
//! payload shapes, plus a decoder-hostility suite.
//!
//! The round-trip properties drive the codec with `arb_tricky_set` —
//! escape-laden strings, ∅, nested scopes, the payloads that break
//! naive serializers — and random expression trees over them. The
//! adversarial suite then attacks the *decoder*: truncations at every
//! byte, bit flips in header and payload, oversize length claims, and
//! raw garbage. The required outcome everywhere is a structured error —
//! never a panic, never a hang, never a silent misparse.

use proptest::prelude::*;
use std::io::Cursor;
use xst_core::ExtendedSet;
use xst_obs::TraceContext;
use xst_query::Expr;
use xst_server::proto::{ProtoError, Request, Response, WireError};
use xst_server::wire::{encode_frame, read_frame, FrameError, HEADER_LEN, MAX_FRAME};
use xst_server::{ErrorCode, MIN_PROTO_VERSION, PROTO_VERSION};
use xst_storage::{FaultKind, FaultSchedule};
use xst_testkit::{arb_tricky_atom, arb_tricky_set};

// ---------------------------------------------------------------------------
// Generators (built from the offline proptest subset: no regex strings,
// so text is composed from a hostile character palette).
// ---------------------------------------------------------------------------

fn arb_text() -> BoxedStrategy<String> {
    let ch = prop::sample::select(vec![
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '{', '}', '⟨', '⟩', '∅', ',', '^',
    ]);
    prop::collection::vec(ch, 0..12)
        .prop_map(|cs| cs.into_iter().collect())
        .boxed()
}

fn arb_scope() -> BoxedStrategy<xst_core::Scope> {
    (arb_tricky_set(1), arb_tricky_set(1))
        .prop_map(|(s1, s2)| xst_core::Scope::new(s1, s2))
        .boxed()
}

fn arb_expr_depth(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        arb_tricky_set(1).prop_map(Expr::lit).boxed(),
        prop::sample::select(vec!["t", "u", "r", "weird name", "∅"])
            .prop_map(Expr::table)
            .boxed(),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_expr_depth(depth - 1);
    prop_oneof![
        1 => leaf,
        1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)).boxed(),
        1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)).boxed(),
        1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)).boxed(),
        1 => (inner.clone(), arb_tricky_set(1), inner.clone())
            .prop_map(|(r, sigma, a)| r.restrict(sigma, a))
            .boxed(),
        1 => (inner.clone(), arb_tricky_set(1)).prop_map(|(r, sigma)| r.domain(sigma)).boxed(),
        1 => (inner.clone(), inner.clone(), arb_scope())
            .prop_map(|(r, a, scope)| r.image(a, scope))
            .boxed(),
        1 => (inner.clone(), arb_scope(), inner.clone(), arb_scope())
            .prop_map(|(f, s, g, o)| f.rel_product(s, g, o))
            .boxed(),
        1 => (inner.clone(), inner).prop_map(|(a, b)| a.cross(b)).boxed(),
    ]
    .boxed()
}

fn arb_expr() -> BoxedStrategy<Expr> {
    arb_expr_depth(3)
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (any::<u32>(), arb_text())
            .prop_map(|(version, client)| Request::Hello { version, client })
            .boxed(),
        Just(Request::Ping).boxed(),
        arb_expr().prop_map(|expr| Request::Eval { expr }).boxed(),
        arb_expr().prop_map(|expr| Request::Check { expr }).boxed(),
        arb_expr()
            .prop_map(|expr| Request::Explain { expr })
            .boxed(),
        Just(Request::Begin).boxed(),
        Just(Request::Commit).boxed(),
        Just(Request::Abort).boxed(),
        (arb_text(), arb_tricky_set(2))
            .prop_map(|(table, set)| Request::Put { table, set })
            .boxed(),
        (arb_text(), arb_tricky_set(2))
            .prop_map(|(table, set)| Request::Delete { table, set })
            .boxed(),
        arb_text().prop_map(|table| Request::Get { table }).boxed(),
        any::<bool>()
            .prop_map(|json| Request::Metrics { json })
            .boxed(),
        (any::<u64>(), 0u8..5, 1usize..5000)
            .prop_map(|(k, kind, n)| Request::ArmFaults {
                schedule: if k % 2 == 0 {
                    FaultSchedule::AtSite(k)
                } else {
                    FaultSchedule::EveryNth(k.max(1))
                },
                kind: match kind {
                    0 => FaultKind::WriteFail,
                    1 => FaultKind::TornWrite(n),
                    2 => FaultKind::ShortRead(n),
                    3 => FaultKind::SyncFail,
                    _ => FaultKind::Transient,
                },
            })
            .boxed(),
        Just(Request::ClearFaults).boxed(),
        Just(Request::TraceDump).boxed(),
        (any::<bool>(), any::<u32>())
            .prop_map(|(slow, limit)| Request::RequestLog { slow, limit })
            .boxed(),
        // The v2 coordinator kinds: fragment reads and the 2PC round.
        arb_text()
            .prop_map(|table| Request::FragRead { table })
            .boxed(),
        any::<u64>()
            .prop_map(|gtxn| Request::Prepare { gtxn })
            .boxed(),
        (any::<u64>(), any::<bool>())
            .prop_map(|(gtxn, commit)| Request::Decide { gtxn, commit })
            .boxed(),
        prop::collection::vec(any::<u64>(), 0..20)
            .prop_map(|committed| Request::Resolve { committed })
            .boxed(),
    ]
    .boxed()
}

/// A trace context, hostile values included: zero ids (the "absent"
/// sentinels) must ride the wire as faithfully as real ones.
fn arb_trace_id() -> BoxedStrategy<u64> {
    prop_oneof![
        Just(0u64).boxed(),
        Just(u64::MAX).boxed(),
        any::<u64>().boxed(),
    ]
    .boxed()
}

fn arb_trace_ctx() -> BoxedStrategy<TraceContext> {
    (arb_trace_id(), arb_trace_id())
        .prop_map(|(trace_id, parent_span)| TraceContext {
            trace_id,
            parent_span,
        })
        .boxed()
}

/// Everything that may head a frame: plain requests (the v1 shapes plus
/// the v2 observability pulls) and `Traced`-wrapped ones. `Traced` never
/// nests — the decoder rejects that — so the wrapper draws its inner
/// request from the plain pool.
fn arb_wire_request() -> BoxedStrategy<Request> {
    prop_oneof![
        3 => arb_request(),
        1 => (arb_trace_ctx(), arb_request())
            .prop_map(|(ctx, req)| Request::Traced { ctx, req: Box::new(req) })
            .boxed(),
    ]
    .boxed()
}

fn arb_option_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None).boxed(), any::<u64>().prop_map(Some).boxed(),].boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    let code = prop::sample::select(vec![
        ErrorCode::Protocol,
        ErrorCode::Version,
        ErrorCode::Admission,
        ErrorCode::Parse,
        ErrorCode::Analysis,
        ErrorCode::Eval,
        ErrorCode::TxnState,
        ErrorCode::TxnConflict,
        ErrorCode::Storage,
        ErrorCode::Internal,
    ]);
    let table = prop_oneof![Just(None).boxed(), arb_text().prop_map(Some).boxed(),];
    prop_oneof![
        (any::<u32>(), arb_text())
            .prop_map(|(version, banner)| Response::Welcome { version, banner })
            .boxed(),
        Just(Response::Pong).boxed(),
        arb_tricky_set(2)
            .prop_map(|set| Response::Value { set })
            .boxed(),
        arb_text()
            .prop_map(|text| Response::Report { text })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(id, snapshot_ts)| Response::TxnBegun { id, snapshot_ts })
            .boxed(),
        (any::<u64>(), arb_option_u64())
            .prop_map(|(rows, autocommit_ts)| Response::Applied {
                rows,
                autocommit_ts
            })
            .boxed(),
        any::<u64>()
            .prop_map(|ts| Response::Committed { ts })
            .boxed(),
        Just(Response::Aborted).boxed(),
        any::<bool>()
            .prop_map(|armed| Response::FaultsArmed { armed })
            .boxed(),
        (code, table, arb_text())
            .prop_map(|(code, table, message)| {
                Response::Error(WireError {
                    code,
                    table,
                    message,
                })
            })
            .boxed(),
        // The v2 coordinator answers.
        (any::<u64>(), any::<u64>())
            .prop_map(|(gtxn, participants)| Response::Prepared { gtxn, participants })
            .boxed(),
        (any::<bool>(), any::<u64>())
            .prop_map(|(committed, ts)| Response::Decided { committed, ts })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(committed, aborted)| Response::Resolved { committed, aborted })
            .boxed(),
    ]
    .boxed()
}

// ---------------------------------------------------------------------------
// Round-trip properties: encode ∘ decode = id, through the frame layer.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_through_frames(req in arb_wire_request()) {
        let frame = encode_frame(&req.encode()).unwrap();
        let payload = read_frame(&mut Cursor::new(frame)).unwrap();
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    #[test]
    fn responses_round_trip_through_frames(resp in arb_response()) {
        let frame = encode_frame(&resp.encode()).unwrap();
        let payload = read_frame(&mut Cursor::new(frame)).unwrap();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn tricky_sets_survive_the_wire_text_encoding(set in arb_tricky_set(3)) {
        // The set payload rides as canonical display text: the round trip
        // must reproduce the identity exactly, escapes and ∅ included.
        let req = Request::Put { table: "t".into(), set: set.clone() };
        let decoded = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn tricky_atoms_embed_in_expressions(v in arb_tricky_atom()) {
        let set = ExtendedSet::classical([v]);
        let expr = Expr::lit(set.clone()).union(Expr::table("t")).restrict(set, Expr::table("t"));
        let req = Request::Eval { expr };
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }
}

// ---------------------------------------------------------------------------
// Adversarial decoding: structured errors, never panics or hangs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncated_frames_error_structurally(req in arb_wire_request(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&req.encode()).unwrap();
        let cut = (cut_seed % frame.len() as u64) as usize;
        let err = read_frame(&mut Cursor::new(frame[..cut].to_vec())).unwrap_err();
        prop_assert!(matches!(
            err,
            FrameError::Closed | FrameError::Truncated | FrameError::BadCrc { .. }
        ));
    }

    #[test]
    fn bit_flips_are_rejected_or_decode_structurally(
        req in arb_wire_request(),
        at_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        // Flip one bit anywhere in the frame. The frame layer must
        // reject it (magic, length, or CRC catches every flip in header
        // and payload); whatever hypothetically got through must still
        // decode without panicking. Reaching the end of this block IS
        // the property.
        let frame = encode_frame(&req.encode()).unwrap();
        let mut bent = frame.clone();
        let at = (at_seed % bent.len() as u64) as usize;
        bent[at] ^= 1 << bit;
        if let Ok(payload) = read_frame(&mut Cursor::new(bent)) {
            let _ = Request::decode(&payload);
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Raw fuzz at both layers: every outcome must be a value or a
        // structured error — reaching this line at all is the assertion.
        let _ = read_frame(&mut Cursor::new(bytes.clone()));
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn valid_frames_with_garbage_payloads_error_structurally(
        bytes in prop::collection::vec(any::<u8>(), 0..200)
    ) {
        // A well-framed but meaningless payload must fail message
        // decoding with a structured ProtoError (unless the bytes happen
        // to be a valid message, which decode proves by succeeding).
        let frame = encode_frame(&bytes).unwrap();
        let payload = read_frame(&mut Cursor::new(frame)).unwrap();
        prop_assert_eq!(&payload, &bytes);
        match Request::decode(&payload) {
            Ok(_) => {}
            Err(
                ProtoError::Truncated
                | ProtoError::Trailing(_)
                | ProtoError::BadTag { .. }
                | ProtoError::BadUtf8
                | ProtoError::BadSet(_)
                | ProtoError::TooDeep,
            ) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted decoder attacks.
// ---------------------------------------------------------------------------

#[test]
fn oversize_length_header_rejected_before_allocation() {
    // Claim a u32::MAX-byte payload: the reader must reject from the
    // header alone, not try to allocate 4 GiB.
    let mut frame = Vec::new();
    frame.extend_from_slice(b"XSTP");
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_frame(&mut Cursor::new(frame)),
        Err(FrameError::Oversize(_))
    ));
    // Just over the cap: same.
    let mut frame = Vec::new();
    frame.extend_from_slice(b"XSTP");
    frame.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_frame(&mut Cursor::new(frame)),
        Err(FrameError::Oversize(_))
    ));
}

#[test]
fn header_bit_flips_all_caught() {
    let frame = encode_frame(&Request::Ping.encode()).unwrap();
    for at in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut bent = frame.clone();
            bent[at] ^= 1 << bit;
            let got = read_frame(&mut Cursor::new(bent));
            assert!(
                got.is_err(),
                "flip at header byte {at} bit {bit} slipped through: {got:?}"
            );
        }
    }
}

#[test]
fn payload_bit_flips_all_fail_crc() {
    let frame = encode_frame(&Request::Get { table: "t".into() }.encode()).unwrap();
    for at in HEADER_LEN..frame.len() {
        for bit in 0..8 {
            let mut bent = frame.clone();
            bent[at] ^= 1 << bit;
            assert!(
                matches!(
                    read_frame(&mut Cursor::new(bent)),
                    Err(FrameError::BadCrc { .. })
                ),
                "flip at payload byte {at} bit {bit} not caught by crc"
            );
        }
    }
}

#[test]
fn hostile_recursion_depth_is_bounded() {
    // Hand-build a payload of nested Union tags with no leaves: the
    // decoder must stop at its depth cap, not recurse until stack
    // overflow or chase the truncation forever.
    let mut payload = vec![2u8]; // Request::Eval
    payload.extend(std::iter::repeat_n(2u8, 100_000)); // Expr::Union tags
    assert_eq!(Request::decode(&payload), Err(ProtoError::TooDeep));
}

#[test]
fn nested_traced_wrappers_are_rejected() {
    // Encoding can express Traced(Traced(..)) — the decoder must refuse
    // it, or a hostile peer could nest contexts arbitrarily deep.
    let inner = Request::Traced {
        ctx: TraceContext {
            trace_id: 7,
            parent_span: 8,
        },
        req: Box::new(Request::Ping),
    };
    let outer = Request::Traced {
        ctx: TraceContext {
            trace_id: 1,
            parent_span: 2,
        },
        req: Box::new(inner),
    };
    assert!(matches!(
        Request::decode(&outer.encode()),
        Err(ProtoError::BadTag { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn traced_wrappers_round_trip_any_context(ctx in arb_trace_ctx(), req in arb_request()) {
        let wrapped = Request::Traced { ctx, req: Box::new(req) };
        let frame = encode_frame(&wrapped.encode()).unwrap();
        let payload = read_frame(&mut Cursor::new(frame)).unwrap();
        prop_assert_eq!(Request::decode(&payload).unwrap(), wrapped);
    }

    #[test]
    fn absent_context_is_byte_identical_to_v1(req in arb_request()) {
        // The Traced wrapper is strictly additive: an unwrapped request
        // encodes exactly as protocol v1 spelled it, so a v1 peer and a
        // v2 peer that opted out of tracing are indistinguishable.
        let bytes = req.encode();
        // No phantom Traced tag may lead the plain encoding.
        prop_assert_ne!(bytes.first(), Some(&14u8));
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn truncated_traced_payloads_error_structurally(
        ctx in arb_trace_ctx(),
        req in arb_request(),
        cut_seed in any::<u64>(),
    ) {
        // Cut inside the context fields or the inner request: the
        // decoder must answer Truncated-shaped errors, never panic.
        let wrapped = Request::Traced { ctx, req: Box::new(req) };
        let bytes = wrapped.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let _ = Request::decode(&bytes[..cut]);
    }
}

#[test]
fn version_constant_is_stable() {
    // The handshake contract: bumping this silently would strand every
    // deployed client. Force the change to be visible in review.
    // v2 = distributed tracing (Traced/TraceDump/RequestLog) plus the
    // coordinator kinds (FragRead/Prepare/Decide/Resolve); servers
    // still seat v1 peers, so MIN stays pinned at 1.
    assert_eq!(PROTO_VERSION, 2);
    assert_eq!(MIN_PROTO_VERSION, 1);
}

// ---------------------------------------------------------------------------
// Coordinator kinds: truncation hostility and v1-peer gating.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cut a coordinator message anywhere: structured error or valid
    /// decode, never a panic. Resolve is the interesting one — its
    /// count prefix must not drive allocation past the actual bytes.
    #[test]
    fn truncated_coordinator_requests_error_structurally(
        committed in prop::collection::vec(any::<u64>(), 0..50),
        gtxn in any::<u64>(),
        pick in 0u8..4,
        cut_seed in any::<u64>(),
    ) {
        let req = match pick {
            0 => Request::FragRead { table: "t".into() },
            1 => Request::Prepare { gtxn },
            2 => Request::Decide { gtxn, commit: gtxn.is_multiple_of(2) },
            _ => Request::Resolve { committed },
        };
        let bytes = req.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let _ = Request::decode(&bytes[..cut]);
    }
}

/// A Resolve frame claiming u32::MAX gtxns with no bytes behind the
/// claim must fail structurally without allocating for the claim.
#[test]
fn resolve_with_hostile_count_prefix_is_rejected() {
    let mut payload = vec![20u8]; // Request::Resolve tag
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(Request::decode(&payload), Err(ProtoError::Truncated));
}

/// A session negotiated at protocol v1 must reject every coordinator
/// kind with a structured Protocol error — the state machine stays
/// untouched (no transaction consumed, no prepare staged).
#[test]
fn v1_sessions_reject_coordinator_kinds_cleanly() {
    use std::sync::Arc;
    use xst_server::{ServedEngine, Session};

    let engine = Arc::new(ServedEngine::new());
    let mut v1 = Session::with_version(Arc::clone(&engine), 1, 1);
    let kinds = [
        Request::FragRead { table: "t".into() },
        Request::Prepare { gtxn: 7 },
        Request::Decide {
            gtxn: 7,
            commit: true,
        },
        Request::Resolve {
            committed: vec![1, 2, 3],
        },
    ];
    for req in kinds {
        match v1.handle(req) {
            Response::Error(e) => assert_eq!(
                e.code,
                ErrorCode::Protocol,
                "v1 rejection must be a Protocol error, got {e:?}"
            ),
            other => panic!("v1 session answered a coordinator kind with {other:?}"),
        }
    }

    // The same engine behind a v2 session serves them fine (proving the
    // gate keys on the negotiated version, not on capability).
    let mut v2 = Session::with_version(engine, 2, 2);
    assert!(matches!(
        v2.handle(Request::Put {
            table: "t".into(),
            set: ExtendedSet::classical([1, 2]),
        }),
        Response::Applied { .. }
    ));
    assert!(matches!(
        v2.handle(Request::FragRead { table: "t".into() }),
        Response::Value { .. }
    ));
    assert!(matches!(
        v2.handle(Request::Resolve { committed: vec![] }),
        Response::Resolved {
            committed: 0,
            aborted: 0
        }
    ));
}
