//! The structured request log: a bounded ring of per-request records
//! plus a threshold-gated slow-query ring.
//!
//! Every served request (and every accounted shell command) appends one
//! [`RequestRecord`]: who ran it (session, transaction), what it was
//! (request kind, detail), how long it took, its itemized
//! [`QueryCost`] bill, its outcome, and the trace id that links it to
//! the span dump. The ring is bounded ([`RequestLog::CAPACITY`]) so a
//! long-lived server's memory stays flat; a second, smaller ring keeps
//! only requests whose wall time crossed the configurable slow
//! threshold, so rare tail events survive long after the main ring has
//! cycled past them.
//!
//! The shell surfaces this as `.top` (slowest recent requests), `.slow`
//! (the slow ring + threshold control); the server surfaces it remotely
//! through the `RequestLog` request kind.

use crate::cost::QueryCost;
use crate::metrics::Counter;
use crate::span::fmt_ns;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One request's structured log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Monotonic sequence number (process-wide, 1-based).
    pub seq: u64,
    /// Server session id (0 = local shell / not a served session).
    pub session: u64,
    /// The explicit transaction the request ran in, if any.
    pub txn: Option<u64>,
    /// Request kind, e.g. `"eval"`, `"put"`, `"commit"`.
    pub kind: &'static str,
    /// Short free-form detail (table name, plan summary); may be empty.
    pub detail: String,
    /// Trace id linking this record to the span dump (0 = untraced).
    pub trace_id: u64,
    /// Wall time spent handling the request, in nanoseconds.
    pub wall_ns: u64,
    /// The request's itemized resource bill.
    pub cost: QueryCost,
    /// `"ok"` or the structured error code name.
    pub outcome: &'static str,
}

struct LogState {
    next_seq: u64,
    recent: VecDeque<RequestRecord>,
    slow: VecDeque<RequestRecord>,
}

/// The bounded request log. One process-global instance lives behind
/// [`request_log`].
pub struct RequestLog {
    state: Mutex<LogState>,
    /// Slow threshold in nanoseconds; 0 disables the slow ring.
    slow_threshold_ns: AtomicU64,
}

fn records_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        crate::registry().counter(
            crate::names::REQLOG_RECORDS_TOTAL,
            "Requests recorded in the structured request log.",
        )
    })
}

fn slow_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        crate::registry().counter(
            crate::names::REQLOG_SLOW_TOTAL,
            "Requests whose wall time crossed the slow-query threshold.",
        )
    })
}

impl RequestLog {
    /// Requests the main ring retains (oldest evicted first).
    pub const CAPACITY: usize = 512;
    /// Requests the slow ring retains.
    pub const SLOW_CAPACITY: usize = 128;

    fn new() -> RequestLog {
        RequestLog {
            state: Mutex::new(LogState {
                next_seq: 1,
                recent: VecDeque::new(),
                slow: VecDeque::new(),
            }),
            slow_threshold_ns: AtomicU64::new(0),
        }
    }

    /// Append one record (no-op while the collector is disabled). The
    /// record's `seq` field is assigned here; pass 0.
    pub fn record(&self, mut record: RequestRecord) {
        if !crate::enabled() {
            return;
        }
        records_total().inc();
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Retention is decided — and the counter bumped — under the same
        // lock as the ring insertion, so `xst_reqlog_slow_total` always
        // equals the number of records that actually entered the slow
        // ring. Reading the threshold before the lock let a mid-flight
        // `.slow off` (or a new threshold) race a record: the counter
        // would reflect one decision and the ring the other.
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        let is_slow = threshold > 0 && record.wall_ns >= threshold;
        record.seq = st.next_seq;
        st.next_seq += 1;
        if is_slow {
            slow_total().inc();
            if st.slow.len() >= RequestLog::SLOW_CAPACITY {
                st.slow.pop_front();
            }
            st.slow.push_back(record.clone());
        }
        if st.recent.len() >= RequestLog::CAPACITY {
            st.recent.pop_front();
        }
        st.recent.push_back(record);
    }

    /// The most recent records, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<RequestRecord> {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.recent.iter().rev().take(limit).cloned().collect()
    }

    /// The retained records ranked by wall time (slowest first), up to
    /// `limit` — the `.top` view.
    pub fn top(&self, limit: usize) -> Vec<RequestRecord> {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<RequestRecord> = st.recent.iter().cloned().collect();
        all.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.seq.cmp(&b.seq)));
        all.truncate(limit);
        all
    }

    /// The slow ring, newest first, up to `limit`.
    pub fn slow(&self, limit: usize) -> Vec<RequestRecord> {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.slow.iter().rev().take(limit).cloned().collect()
    }

    /// Set the slow threshold in nanoseconds (0 disables the slow ring).
    ///
    /// Serialized against [`RequestLog::record`] via the state lock: once
    /// this returns, every record that had already entered the slow ring
    /// was counted, and no record observing the new threshold can land
    /// under the old decision.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        let _st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow threshold in nanoseconds (0 = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Records currently retained in the main ring.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recent
            .len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained record (both rings); the sequence keeps
    /// counting.
    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.recent.clear();
        st.slow.clear();
    }
}

/// The process-global request log.
pub fn request_log() -> &'static RequestLog {
    static LOG: OnceLock<RequestLog> = OnceLock::new();
    LOG.get_or_init(RequestLog::new)
}

/// Render records as the fixed-column table behind `.top` / `.slow` and
/// the remote `RequestLog` report.
pub fn render_records(records: &[RequestRecord]) -> String {
    if records.is_empty() {
        return "(no requests recorded)\n".to_string();
    }
    let mut out = format!(
        "{:<6} {:<8} {:<6} {:<12} {:>10} {:<12} {:<18} {}\n",
        "seq", "session", "txn", "kind", "wall", "outcome", "trace", "cost"
    );
    for r in records {
        let txn = r.txn.map_or("-".to_string(), |id| id.to_string());
        let trace = if r.trace_id == 0 {
            "-".to_string()
        } else {
            format!("{:#018x}", r.trace_id)
        };
        let mut kind = r.kind.to_string();
        if !r.detail.is_empty() {
            kind = format!("{kind}({})", r.detail);
        }
        out.push_str(&format!(
            "{:<6} {:<8} {:<6} {:<12} {:>10} {:<12} {:<18} {}\n",
            r.seq,
            r.session,
            txn,
            kind,
            fmt_ns(r.wall_ns),
            r.outcome,
            trace,
            r.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::obs_lock;

    fn rec(kind: &'static str, wall_ns: u64) -> RequestRecord {
        RequestRecord {
            seq: 0,
            session: 3,
            txn: None,
            kind,
            detail: String::new(),
            trace_id: 0xabc,
            wall_ns,
            cost: QueryCost::default(),
            outcome: "ok",
        }
    }

    #[test]
    fn ring_is_bounded_and_top_ranks_by_wall_time() {
        let _serial = obs_lock();
        crate::enable();
        let log = RequestLog::new();
        for i in 0..(RequestLog::CAPACITY + 10) {
            log.record(rec("eval", i as u64));
        }
        assert_eq!(log.len(), RequestLog::CAPACITY);
        let top = log.top(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].wall_ns >= top[1].wall_ns && top[1].wall_ns >= top[2].wall_ns);
        assert_eq!(top[0].wall_ns, (RequestLog::CAPACITY + 9) as u64);
        let newest = log.recent(1);
        assert_eq!(newest[0].wall_ns, (RequestLog::CAPACITY + 9) as u64);
        crate::disable();
    }

    #[test]
    fn slow_ring_is_threshold_gated() {
        let _serial = obs_lock();
        crate::enable();
        let log = RequestLog::new();
        log.record(rec("fast", 10));
        assert!(log.slow(10).is_empty(), "threshold 0 disables the ring");
        log.set_slow_threshold_ns(1_000);
        log.record(rec("fast", 999));
        log.record(rec("slow", 1_000));
        log.record(rec("slower", 5_000));
        let slow = log.slow(10);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].kind, "slower", "newest first");
        assert_eq!(slow[1].kind, "slow");
        crate::disable();
    }

    #[test]
    fn slow_counter_agrees_with_ring_insertions_across_threshold_changes() {
        let _serial = obs_lock();
        crate::enable();
        let log = RequestLog::new();
        let counted = |f: &dyn Fn()| {
            let before = super::slow_total().get();
            f();
            super::slow_total().get() - before
        };
        log.set_slow_threshold_ns(1_000);
        // A slow record while the ring is on: counted AND retained.
        assert_eq!(counted(&|| log.record(rec("slow", 2_000))), 1);
        assert_eq!(log.slow(10).len(), 1);
        // `.slow off` then the same record: neither counted nor retained —
        // the regression was counting before retention was decided, so a
        // threshold change between the two left the counter ahead of the
        // ring.
        log.set_slow_threshold_ns(0);
        assert_eq!(counted(&|| log.record(rec("slow", 2_000))), 0);
        assert_eq!(log.slow(10).len(), 1, "ring did not grow");
        // Re-arm with a higher bar: sub-threshold records stay uncounted.
        log.set_slow_threshold_ns(5_000);
        assert_eq!(counted(&|| log.record(rec("fast", 4_999))), 0);
        assert_eq!(counted(&|| log.record(rec("slow", 5_000))), 1);
        assert_eq!(log.slow(10).len(), 2);
        // The invariant the fix enforces: counter delta == ring insertions.
        crate::disable();
    }

    #[test]
    fn concurrent_threshold_flips_never_desync_counter_and_ring() {
        let _serial = obs_lock();
        crate::enable();
        let log = std::sync::Arc::new(RequestLog::new());
        log.set_slow_threshold_ns(1);
        let before = super::slow_total().get();
        let flipper = {
            let log = std::sync::Arc::clone(&log);
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    log.set_slow_threshold_ns(if i % 2 == 0 { 0 } else { 1 });
                }
            })
        };
        // 100 < SLOW_CAPACITY, so nothing is ever evicted and the ring
        // length equals the number of insertions.
        for _ in 0..100 {
            log.record(rec("maybe-slow", 10));
        }
        flipper.join().expect("flipper thread");
        let counted = super::slow_total().get() - before;
        let retained = log.slow(RequestLog::SLOW_CAPACITY).len() as u64;
        assert_eq!(
            counted, retained,
            "every counted slow record must actually be in the ring"
        );
        log.set_slow_threshold_ns(0);
        crate::disable();
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _serial = obs_lock();
        crate::disable();
        let log = RequestLog::new();
        log.record(rec("ghost", 1));
        assert!(log.is_empty());
    }

    #[test]
    fn rendering_includes_trace_cost_and_detail() {
        let mut r = rec("put", 2_500_000);
        r.detail = "t".to_string();
        r.txn = Some(12);
        r.cost.wal_appends = 4;
        let table = render_records(&[r]);
        assert!(table.contains("put(t)"), "{table}");
        assert!(table.contains("2.50ms"), "{table}");
        assert!(table.contains("0x0000000000000abc"), "{table}");
        assert!(table.contains("wal=4"), "{table}");
        assert!(table.contains(" 12 "), "{table}");
        assert_eq!(render_records(&[]), "(no requests recorded)\n");
    }
}
