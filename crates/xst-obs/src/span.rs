//! Hierarchical trace spans.
//!
//! A span is opened with the [`span!`](crate::span!) macro (or
//! [`SpanGuard::new`]) and closed by RAII drop. While open it sits on a
//! per-thread stack, so spans opened inside it become its children; when
//! it closes, a finished [`SpanRecord`] (wall-time, parent link,
//! attributes) lands in a per-thread buffer. The buffer drains into the
//! global [`Collector`] whenever a *root* span (thread-stack empty after
//! the pop) closes — so the hot path never touches a process-wide lock,
//! only span-tree roots do.
//!
//! Worker threads spawned inside a span start their own root (thread-local
//! stacks do not cross threads); their records still drain to the same
//! collector and carry a distinct `thread` index.
//!
//! ## Distributed traces
//!
//! Every span additionally carries a **trace id**: a stable 64-bit
//! identifier shared by every span of one logical request, across threads
//! and across processes. A root span normally mints a fresh trace id; a
//! server thread that received a [`TraceContext`] over the wire instead
//! [`adopt`]s it, so its root spans join the remote caller's trace (their
//! `parent` points at the caller's span id, which may live in another
//! process — [`span_tree`] treats a parent absent from the batch as a
//! root, so partial dumps still render). [`export_trace_json`] renders a
//! batch as the `xst-trace/1` JSON schema the server's `TraceDump`
//! request and the shell's `.trace export` emit.

use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic).
    pub id: u64,
    /// Stable 64-bit id of the trace this span belongs to (shared across
    /// threads and processes; never zero on a live record).
    pub trace_id: u64,
    /// Enclosing span on the same thread, if any — or the remote span a
    /// [`TraceContext`] named (an id that may live in another process).
    pub parent: Option<u64>,
    /// Instrumentation-site name, e.g. `"eval.restrict"`.
    pub name: &'static str,
    /// Small per-process thread index (not the OS tid).
    pub thread: u64,
    /// Start time in nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// `key=value` attributes recorded while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

/// The portable identity of an in-flight trace: enough for a peer (in
/// another thread or another process) to stitch its spans under the same
/// trace. This is what the wire protocol carries alongside a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every joined span will carry.
    pub trace_id: u64,
    /// The caller's span id — joined root spans parent under it
    /// (`0` means "no parent": join the trace as a root).
    pub parent_span: u64,
}

/// SplitMix64 finalizer: decorrelates sequential counter values into
/// well-spread 64-bit ids.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a fresh, never-zero trace id. Ids mix the process id with a
/// process-local counter through SplitMix64, so ids from a client and a
/// server on one machine land in different sequences and a merged dump
/// does not collide.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seed = (std::process::id() as u64) << 32;
    let id = splitmix64(seed ^ NEXT.fetch_add(1, Ordering::Relaxed));
    if id == 0 {
        1
    } else {
        id
    }
}

/// The global span sink: finished records from every thread, in drain
/// order.
pub struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            finished: Mutex::new(Vec::new()),
        }
    }

    /// Most finished spans the collector retains; older records are
    /// discarded first, so a long-lived traced server stays bounded even
    /// if nothing ever drains it.
    pub const MAX_RETAINED: usize = 1 << 16;

    /// Take every collected span, leaving the collector empty.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.finished.lock().expect("span sink poisoned"))
    }

    /// Copy every collected span without draining — the `TraceDump`
    /// request's read, so remote trace fetches do not race local `.trace`
    /// consumers for the same records.
    pub fn snapshot_spans(&self) -> Vec<SpanRecord> {
        self.finished.lock().expect("span sink poisoned").clone()
    }

    /// Number of collected (drained) spans.
    pub fn len(&self) -> usize {
        self.finished.lock().expect("span sink poisoned").len()
    }

    /// True iff nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every collected span.
    pub fn clear(&self) {
        self.finished.lock().expect("span sink poisoned").clear();
    }

    fn absorb(&self, records: &mut Vec<SpanRecord>) {
        let mut finished = self.finished.lock().expect("span sink poisoned");
        finished.append(records);
        let len = finished.len();
        if len > Collector::MAX_RETAINED {
            finished.drain(..len - Collector::MAX_RETAINED);
        }
    }
}

/// The process-global collector.
pub fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(Collector::new)
}

struct ThreadSpans {
    thread: u64,
    stack: Vec<u64>,
    /// Trace id of the innermost open span (valid while `stack` is
    /// non-empty).
    trace: u64,
    /// Ambient remote context installed by [`adopt`]: root spans opened
    /// while it is set join this trace instead of minting a fresh one.
    adopted: Option<TraceContext>,
    buf: Vec<SpanRecord>,
}

thread_local! {
    static TLS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        thread: collector().next_thread.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        trace: 0,
        adopted: None,
        buf: Vec::new(),
    });
}

struct ActiveSpan {
    id: u64,
    trace_id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

/// RAII guard for one open span. Create with the
/// [`span!`](crate::span!) macro; the span closes (and is recorded) when
/// the guard drops. When the collector is disabled this is a no-op shell
/// whose construction cost one atomic load.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a span named `name` under the innermost open span of this
    /// thread. Records nothing when the collector is disabled.
    pub fn new(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        let c = collector();
        let id = c.next_id.fetch_add(1, Ordering::Relaxed);
        let (parent, trace_id) = TLS
            .try_with(|tls| {
                let mut tls = tls.borrow_mut();
                let (parent, trace_id) = match tls.stack.last().copied() {
                    // Nested span: inherit the open trace.
                    Some(p) => (Some(p), tls.trace),
                    // Root span: join an adopted remote trace, else mint.
                    None => match tls.adopted {
                        Some(ctx) => (
                            (ctx.parent_span != 0).then_some(ctx.parent_span),
                            ctx.trace_id,
                        ),
                        None => (None, next_trace_id()),
                    },
                };
                tls.trace = trace_id;
                tls.stack.push(id);
                (parent, trace_id)
            })
            .unwrap_or_else(|_| (None, next_trace_id()));
        SpanGuard {
            inner: Some(ActiveSpan {
                id,
                trace_id,
                parent,
                name,
                start: Instant::now(),
                start_ns: c.epoch.elapsed().as_nanos() as u64,
                attrs: Vec::new(),
            }),
        }
    }

    /// Attach a `key=value` attribute. No-op on a disabled guard.
    pub fn attr(&mut self, key: &'static str, value: impl Display) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key, value.to_string()));
        }
    }

    /// Span id, if the guard is live (collector was enabled at open).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }

    /// Trace id this span belongs to, if the guard is live.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.trace_id)
    }

    /// The [`TraceContext`] a peer should adopt to stitch its spans under
    /// this one, if the guard is live.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|a| TraceContext {
            trace_id: a.trace_id,
            parent_span: a.id,
        })
    }
}

/// RAII handle restoring the thread's previous ambient trace context.
/// Returned by [`adopt`].
pub struct AdoptGuard {
    prev: Option<TraceContext>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        let _ = TLS.try_with(|tls| tls.borrow_mut().adopted = prev);
    }
}

/// Install `ctx` as this thread's ambient trace for the guard's
/// lifetime: root spans opened meanwhile join the remote trace (their
/// parent is `ctx.parent_span`) instead of minting a fresh trace id.
/// Nested adoptions stack; each guard restores its predecessor.
pub fn adopt(ctx: TraceContext) -> AdoptGuard {
    let prev = TLS
        .try_with(|tls| tls.borrow_mut().adopted.replace(ctx))
        .unwrap_or(None);
    AdoptGuard { prev }
}

/// The context a peer should adopt to continue this thread's current
/// trace: the innermost open span if any, else the adopted ambient
/// context, else `None`.
pub fn current_context() -> Option<TraceContext> {
    TLS.try_with(|tls| {
        let tls = tls.borrow();
        match tls.stack.last().copied() {
            Some(span) => Some(TraceContext {
                trace_id: tls.trace,
                parent_span: span,
            }),
            None => tls.adopted,
        }
    })
    .unwrap_or(None)
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let duration_ns = active.start.elapsed().as_nanos() as u64;
        let _ = TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            // Guards drop in reverse open order on one thread, so the top
            // of the stack is this span; be tolerant anyway (a guard moved
            // across threads would miss its frame).
            if tls.stack.last() == Some(&active.id) {
                tls.stack.pop();
            } else {
                tls.stack.retain(|&id| id != active.id);
            }
            let thread = tls.thread;
            tls.buf.push(SpanRecord {
                id: active.id,
                trace_id: active.trace_id,
                parent: active.parent,
                name: active.name,
                thread,
                start_ns: active.start_ns,
                duration_ns,
                attrs: active.attrs,
            });
            if tls.stack.is_empty() {
                let mut buf = std::mem::take(&mut tls.buf);
                collector().absorb(&mut buf);
            }
        });
    }
}

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
///
/// Returns a [`SpanGuard`] that must be bound (`let _g = span!(...)`) so
/// the span stays open for the intended scope. Attribute values are
/// rendered with `Display`, and only when the collector is enabled — on a
/// disabled guard the value expressions are never formatted.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::new($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span::SpanGuard::new($name);
        if guard.id().is_some() {
            $(guard.attr(stringify!($key), &$value);)+
        }
        guard
    }};
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The finished span.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

/// Rebuild the parent/child forest from a batch of records (as returned
/// by [`Collector::take_spans`]). Roots are spans whose parent is absent
/// from the batch; siblings are ordered by start time.
pub fn span_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    use std::collections::BTreeMap;
    let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
    let mut children_of: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        match r.parent {
            Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(r),
            _ => roots.push(r),
        }
    }
    fn build(
        r: &SpanRecord,
        children_of: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
    ) -> SpanNode {
        let mut children: Vec<SpanNode> = children_of
            .get(&r.id)
            .map(|kids| kids.iter().map(|k| build(k, children_of)).collect())
            .unwrap_or_default();
        children.sort_by_key(|n| n.record.start_ns);
        SpanNode {
            record: r.clone(),
            children,
        }
    }
    roots.sort_by_key(|r| r.start_ns);
    roots.into_iter().map(|r| build(r, &children_of)).collect()
}

/// Render a span forest as an indented tree with durations and attributes
/// (the `.trace show` output).
pub fn render_tree(forest: &[SpanNode]) -> String {
    fn walk(node: &SpanNode, prefix: &str, last: bool, top: bool, out: &mut String) {
        let (branch, next_prefix) = if top {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let attrs = if node.record.attrs.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> = node
                .record
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("  [{}]", kv.join(" "))
        };
        out.push_str(&format!(
            "{branch}{}  {}{attrs}\n",
            node.record.name,
            fmt_ns(node.record.duration_ns)
        ));
        for (i, child) in node.children.iter().enumerate() {
            walk(
                child,
                &next_prefix,
                i + 1 == node.children.len(),
                false,
                out,
            );
        }
    }
    let mut out = String::new();
    for node in forest {
        walk(node, "", true, true, &mut out);
    }
    out
}

/// Escape `s` into `out` as a JSON string body (no surrounding quotes).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render a batch of records as the `xst-trace/1` JSON document: the
/// reconstructed span forest, each node carrying its `trace_id` as a
/// `0x`-prefixed hex string (stable to grep, immune to JSON number
/// precision), ids/parents as numbers, times in nanoseconds, attributes
/// as a string map, and children nested. This is the payload of the
/// server's `TraceDump` request and the shell's `.trace export`.
pub fn export_trace_json(records: &[SpanRecord]) -> String {
    fn node(n: &SpanNode, out: &mut String) {
        let r = &n.record;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"id\":{},\"trace_id\":\"{:#018x}\",\"parent\":",
            r.name, r.id, r.trace_id
        ));
        match r.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"thread\":{},\"start_ns\":{},\"duration_ns\":{},\"attrs\":{{",
            r.thread, r.start_ns, r.duration_ns
        ));
        for (i, (k, v)) in r.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, out);
            out.push_str("\":\"");
            json_escape(v, out);
            out.push('"');
        }
        out.push_str("},\"children\":[");
        for (i, child) in n.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node(child, out);
        }
        out.push_str("]}");
    }
    let forest = span_tree(records);
    let mut out = String::from("{\"schema\":\"xst-trace/1\",\"spans\":[");
    for (i, root) in forest.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node(root, &mut out);
    }
    out.push_str("]}");
    out
}

/// Human duration: picks ns/µs/ms/s.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::obs_lock;

    #[test]
    fn nesting_reconstructs_the_tree() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _a = crate::span!("a");
            {
                let mut b = crate::span!("b", size = 7);
                b.attr("extra", "x");
                let _c = crate::span!("c");
            }
            let _d = crate::span!("d");
        }
        crate::disable();
        let records = collector().take_spans();
        assert_eq!(records.len(), 4);
        let forest = span_tree(&records);
        assert_eq!(forest.len(), 1, "one root");
        let root = &forest[0];
        assert_eq!(root.record.name, "a");
        let kids: Vec<&str> = root.children.iter().map(|c| c.record.name).collect();
        assert_eq!(kids, ["b", "d"], "siblings in start order");
        assert_eq!(root.children[0].children[0].record.name, "c");
        assert_eq!(
            root.children[0].record.attrs,
            vec![("size", "7".to_string()), ("extra", "x".to_string())]
        );
        let rendered = render_tree(&forest);
        assert!(rendered.contains("└─ d"), "{rendered}");
        assert!(rendered.contains("[size=7 extra=x]"), "{rendered}");
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _serial = obs_lock();
        crate::disable();
        collector().clear();
        {
            let mut g = crate::span!("ghost", n = 1);
            g.attr("more", 2);
            assert_eq!(g.id(), None);
        }
        assert!(collector().is_empty(), "disabled spans must not collect");
        assert!(collector().take_spans().is_empty());
    }

    #[test]
    fn spans_from_worker_threads_all_collect() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _root = crate::span!("fanout");
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _w = crate::span!("worker");
                    });
                }
            });
        }
        crate::disable();
        let records = collector().take_spans();
        assert_eq!(records.iter().filter(|r| r.name == "worker").count(), 4);
        let threads: std::collections::BTreeSet<u64> = records
            .iter()
            .filter(|r| r.name == "worker")
            .map(|r| r.thread)
            .collect();
        assert!(threads.len() > 1, "workers carry distinct thread indexes");
        // Workers are roots of their own threads (no cross-thread parent).
        let forest = span_tree(&records);
        assert_eq!(forest.len(), 5);
    }

    #[test]
    fn every_span_of_one_tree_shares_the_root_trace_id() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _a = crate::span!("outer");
            let _b = crate::span!("mid");
            let _c = crate::span!("leaf");
        }
        {
            let _d = crate::span!("second-root");
        }
        crate::disable();
        let records = collector().take_spans();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        assert_ne!(outer.trace_id, 0);
        for name in ["mid", "leaf"] {
            let r = records.iter().find(|r| r.name == name).unwrap();
            assert_eq!(r.trace_id, outer.trace_id, "{name}");
        }
        let second = records.iter().find(|r| r.name == "second-root").unwrap();
        assert_ne!(
            second.trace_id, outer.trace_id,
            "distinct roots mint distinct traces"
        );
    }

    #[test]
    fn adopting_a_remote_context_stitches_root_spans_under_it() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        let remote = TraceContext {
            trace_id: 0xdead_beef_cafe_f00d,
            parent_span: 999_999,
        };
        {
            let _in = adopt(remote);
            let g = crate::span!("joined");
            assert_eq!(g.trace_id(), Some(remote.trace_id));
            let ctx = current_context().unwrap();
            assert_eq!(ctx.trace_id, remote.trace_id);
            assert_eq!(ctx.parent_span, g.id().unwrap());
        }
        // The guard restored the ambient state: fresh roots mint again.
        {
            let g = crate::span!("fresh");
            assert_ne!(g.trace_id(), Some(remote.trace_id));
        }
        crate::disable();
        let records = collector().take_spans();
        let joined = records.iter().find(|r| r.name == "joined").unwrap();
        assert_eq!(joined.trace_id, remote.trace_id);
        assert_eq!(joined.parent, Some(remote.parent_span));
        // The remote parent is absent from the batch, so the joined span
        // still renders as a root of the local forest.
        let forest = span_tree(&records);
        assert!(forest.iter().any(|n| n.record.name == "joined"));
    }

    #[test]
    fn trace_json_export_nests_children_and_escapes_attrs() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let mut a = crate::span!("root.op");
            a.attr("note", "quote\" backslash\\ newline\n");
            let _b = crate::span!("child.op");
        }
        crate::disable();
        let json = export_trace_json(&collector().take_spans());
        assert!(json.starts_with("{\"schema\":\"xst-trace/1\""), "{json}");
        assert!(json.contains("\"name\":\"root.op\""), "{json}");
        assert!(
            json.contains("\"children\":[{\"name\":\"child.op\""),
            "{json}"
        );
        assert!(
            json.contains("quote\\\" backslash\\\\ newline\\n"),
            "{json}"
        );
        // Exactly one distinct trace id appears, as a 0x-hex string.
        let ids: std::collections::BTreeSet<&str> = json
            .match_indices("\"trace_id\":\"")
            .map(|(i, pat)| &json[i + pat.len()..i + pat.len() + 18])
            .collect();
        assert_eq!(ids.len(), 1, "{json}");
        assert!(ids.iter().all(|id| id.starts_with("0x")), "{json}");
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace id repeated");
        }
    }

    #[test]
    fn snapshot_does_not_drain_and_retention_is_bounded() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _g = crate::span!("kept");
        }
        assert_eq!(collector().snapshot_spans().len(), 1);
        assert_eq!(collector().len(), 1, "snapshot must not drain");
        crate::disable();
        collector().clear();
        // The retention cap holds even when absorb outpaces draining.
        let mut batch: Vec<SpanRecord> = (0..Collector::MAX_RETAINED + 7)
            .map(|i| SpanRecord {
                id: i as u64 + 1,
                trace_id: 1,
                parent: None,
                name: "bulk",
                thread: 0,
                start_ns: i as u64,
                duration_ns: 0,
                attrs: Vec::new(),
            })
            .collect();
        collector().absorb(&mut batch);
        assert_eq!(collector().len(), Collector::MAX_RETAINED);
        let kept = collector().take_spans();
        assert_eq!(kept.first().map(|r| r.id), Some(8), "oldest were dropped");
    }

    #[test]
    fn durations_and_formatting_are_sane() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _s = crate::span!("tick");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        crate::disable();
        let records = collector().take_spans();
        let tick = records.iter().find(|r| r.name == "tick").unwrap();
        assert!(tick.duration_ns >= 2_000_000, "{}", tick.duration_ns);
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
