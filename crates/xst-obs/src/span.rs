//! Hierarchical trace spans.
//!
//! A span is opened with the [`span!`](crate::span!) macro (or
//! [`SpanGuard::new`]) and closed by RAII drop. While open it sits on a
//! per-thread stack, so spans opened inside it become its children; when
//! it closes, a finished [`SpanRecord`] (wall-time, parent link,
//! attributes) lands in a per-thread buffer. The buffer drains into the
//! global [`Collector`] whenever a *root* span (thread-stack empty after
//! the pop) closes — so the hot path never touches a process-wide lock,
//! only span-tree roots do.
//!
//! Worker threads spawned inside a span start their own root (thread-local
//! stacks do not cross threads); their records still drain to the same
//! collector and carry a distinct `thread` index.

use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Instrumentation-site name, e.g. `"eval.restrict"`.
    pub name: &'static str,
    /// Small per-process thread index (not the OS tid).
    pub thread: u64,
    /// Start time in nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// `key=value` attributes recorded while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

/// The global span sink: finished records from every thread, in drain
/// order.
pub struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    finished: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            finished: Mutex::new(Vec::new()),
        }
    }

    /// Take every collected span, leaving the collector empty.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.finished.lock().expect("span sink poisoned"))
    }

    /// Number of collected (drained) spans.
    pub fn len(&self) -> usize {
        self.finished.lock().expect("span sink poisoned").len()
    }

    /// True iff nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every collected span.
    pub fn clear(&self) {
        self.finished.lock().expect("span sink poisoned").clear();
    }

    fn absorb(&self, records: &mut Vec<SpanRecord>) {
        self.finished
            .lock()
            .expect("span sink poisoned")
            .append(records);
    }
}

/// The process-global collector.
pub fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(Collector::new)
}

struct ThreadSpans {
    thread: u64,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

thread_local! {
    static TLS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        thread: collector().next_thread.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
    });
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

/// RAII guard for one open span. Create with the
/// [`span!`](crate::span!) macro; the span closes (and is recorded) when
/// the guard drops. When the collector is disabled this is a no-op shell
/// whose construction cost one atomic load.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a span named `name` under the innermost open span of this
    /// thread. Records nothing when the collector is disabled.
    pub fn new(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        let c = collector();
        let id = c.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = TLS
            .try_with(|tls| {
                let mut tls = tls.borrow_mut();
                let parent = tls.stack.last().copied();
                tls.stack.push(id);
                parent
            })
            .unwrap_or(None);
        SpanGuard {
            inner: Some(ActiveSpan {
                id,
                parent,
                name,
                start: Instant::now(),
                start_ns: c.epoch.elapsed().as_nanos() as u64,
                attrs: Vec::new(),
            }),
        }
    }

    /// Attach a `key=value` attribute. No-op on a disabled guard.
    pub fn attr(&mut self, key: &'static str, value: impl Display) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key, value.to_string()));
        }
    }

    /// Span id, if the guard is live (collector was enabled at open).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let duration_ns = active.start.elapsed().as_nanos() as u64;
        let _ = TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            // Guards drop in reverse open order on one thread, so the top
            // of the stack is this span; be tolerant anyway (a guard moved
            // across threads would miss its frame).
            if tls.stack.last() == Some(&active.id) {
                tls.stack.pop();
            } else {
                tls.stack.retain(|&id| id != active.id);
            }
            let thread = tls.thread;
            tls.buf.push(SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                thread,
                start_ns: active.start_ns,
                duration_ns,
                attrs: active.attrs,
            });
            if tls.stack.is_empty() {
                let mut buf = std::mem::take(&mut tls.buf);
                collector().absorb(&mut buf);
            }
        });
    }
}

/// Open a span: `span!("name")` or `span!("name", key = value, ...)`.
///
/// Returns a [`SpanGuard`] that must be bound (`let _g = span!(...)`) so
/// the span stays open for the intended scope. Attribute values are
/// rendered with `Display`, and only when the collector is enabled — on a
/// disabled guard the value expressions are never formatted.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::new($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span::SpanGuard::new($name);
        if guard.id().is_some() {
            $(guard.attr(stringify!($key), &$value);)+
        }
        guard
    }};
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The finished span.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

/// Rebuild the parent/child forest from a batch of records (as returned
/// by [`Collector::take_spans`]). Roots are spans whose parent is absent
/// from the batch; siblings are ordered by start time.
pub fn span_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    use std::collections::BTreeMap;
    let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
    let mut children_of: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        match r.parent {
            Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(r),
            _ => roots.push(r),
        }
    }
    fn build(
        r: &SpanRecord,
        children_of: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
    ) -> SpanNode {
        let mut children: Vec<SpanNode> = children_of
            .get(&r.id)
            .map(|kids| kids.iter().map(|k| build(k, children_of)).collect())
            .unwrap_or_default();
        children.sort_by_key(|n| n.record.start_ns);
        SpanNode {
            record: r.clone(),
            children,
        }
    }
    roots.sort_by_key(|r| r.start_ns);
    roots.into_iter().map(|r| build(r, &children_of)).collect()
}

/// Render a span forest as an indented tree with durations and attributes
/// (the `.trace show` output).
pub fn render_tree(forest: &[SpanNode]) -> String {
    fn walk(node: &SpanNode, prefix: &str, last: bool, top: bool, out: &mut String) {
        let (branch, next_prefix) = if top {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let attrs = if node.record.attrs.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> = node
                .record
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("  [{}]", kv.join(" "))
        };
        out.push_str(&format!(
            "{branch}{}  {}{attrs}\n",
            node.record.name,
            fmt_ns(node.record.duration_ns)
        ));
        for (i, child) in node.children.iter().enumerate() {
            walk(
                child,
                &next_prefix,
                i + 1 == node.children.len(),
                false,
                out,
            );
        }
    }
    let mut out = String::new();
    for node in forest {
        walk(node, "", true, true, &mut out);
    }
    out
}

/// Human duration: picks ns/µs/ms/s.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::obs_lock;

    #[test]
    fn nesting_reconstructs_the_tree() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _a = crate::span!("a");
            {
                let mut b = crate::span!("b", size = 7);
                b.attr("extra", "x");
                let _c = crate::span!("c");
            }
            let _d = crate::span!("d");
        }
        crate::disable();
        let records = collector().take_spans();
        assert_eq!(records.len(), 4);
        let forest = span_tree(&records);
        assert_eq!(forest.len(), 1, "one root");
        let root = &forest[0];
        assert_eq!(root.record.name, "a");
        let kids: Vec<&str> = root.children.iter().map(|c| c.record.name).collect();
        assert_eq!(kids, ["b", "d"], "siblings in start order");
        assert_eq!(root.children[0].children[0].record.name, "c");
        assert_eq!(
            root.children[0].record.attrs,
            vec![("size", "7".to_string()), ("extra", "x".to_string())]
        );
        let rendered = render_tree(&forest);
        assert!(rendered.contains("└─ d"), "{rendered}");
        assert!(rendered.contains("[size=7 extra=x]"), "{rendered}");
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _serial = obs_lock();
        crate::disable();
        collector().clear();
        {
            let mut g = crate::span!("ghost", n = 1);
            g.attr("more", 2);
            assert_eq!(g.id(), None);
        }
        assert!(collector().is_empty(), "disabled spans must not collect");
        assert!(collector().take_spans().is_empty());
    }

    #[test]
    fn spans_from_worker_threads_all_collect() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _root = crate::span!("fanout");
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _w = crate::span!("worker");
                    });
                }
            });
        }
        crate::disable();
        let records = collector().take_spans();
        assert_eq!(records.iter().filter(|r| r.name == "worker").count(), 4);
        let threads: std::collections::BTreeSet<u64> = records
            .iter()
            .filter(|r| r.name == "worker")
            .map(|r| r.thread)
            .collect();
        assert!(threads.len() > 1, "workers carry distinct thread indexes");
        // Workers are roots of their own threads (no cross-thread parent).
        let forest = span_tree(&records);
        assert_eq!(forest.len(), 5);
    }

    #[test]
    fn durations_and_formatting_are_sane() {
        let _serial = obs_lock();
        crate::enable();
        collector().clear();
        {
            let _s = crate::span!("tick");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        crate::disable();
        let records = collector().take_spans();
        let tick = records.iter().find(|r| r.name == "tick").unwrap();
        assert!(tick.duration_ns >= 2_000_000, "{}", tick.duration_ns);
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
