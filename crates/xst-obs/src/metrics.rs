//! Named counters, gauges, and fixed-bucket latency histograms.
//!
//! Every metric's hot state is atomic: concurrent writers on any number of
//! threads merge by construction, and exporting is a racy-but-consistent
//! snapshot that never blocks writers. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`s handed out by the [`Registry`]; callers on
//! hot paths hold the handle instead of re-resolving the name.
//!
//! Recording is gated on the global collector switch
//! ([`crate::enabled`]): a disabled metric site costs one relaxed atomic
//! load. *Registering* a metric is always allowed (it just names a series;
//! the series stays zero while disabled).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`. No-op while the collector is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1. No-op while the collector is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the value. No-op while the collector is disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `delta` (negative to decrement) to the value atomically. Unlike
    /// [`Gauge::set`], increments from independent owners compose — the
    /// transaction layer uses this so one shared gauge stays coherent
    /// across multiple managers. No-op while the collector is disabled.
    #[inline]
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        self.force_add(delta);
    }

    /// Add `delta` regardless of the collector switch. For the closing
    /// half of paired inc/dec accounting: once an increment has been
    /// applied, its matching decrement must land even if the collector
    /// was disabled in between — dropping it would drift the gauge for
    /// the rest of the process.
    #[inline]
    pub fn force_add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Default latency bucket upper bounds in nanoseconds: powers of four from
/// 256 ns to ~17 s. Thirteen fixed buckets plus the implicit `+Inf`.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
    4_294_967_296,
];

/// A fixed-bucket histogram. Buckets are cumulative at export time
/// (Prometheus convention) but stored as per-bucket counts internally so
/// concurrent observers need a single `fetch_add`.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    /// Overflow bucket (`> bounds.last()`, i.e. `+Inf`).
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. No-op while the collector is disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => &self.buckets[i],
            None => &self.overflow,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record the nanoseconds elapsed since `start`.
    #[inline]
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_nanos() as u64);
    }

    /// Consistent-enough copy of the current state (each cell is read
    /// atomically; cross-cell skew is possible under concurrent writes,
    /// bounded by one in-flight observation per writer).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's state into this one (bucket-wise adds).
    /// Used to merge per-thread local histograms into a shared family.
    /// Panics if bucket bounds differ.
    pub fn merge_from(&self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        if !crate::enabled() {
            return;
        }
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(*theirs, Ordering::Relaxed);
        }
        self.overflow.fetch_add(other.overflow, Ordering::Relaxed);
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`Histogram`], also the unit of merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (shared with the source histogram).
    pub bounds: &'static [u64],
    /// Per-bucket (non-cumulative) counts, aligned with `bounds`.
    pub buckets: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Bucket-wise sum of two snapshots with identical bounds.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            overflow: self.overflow + other.overflow,
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One named metric family: help text plus its labeled series. The empty
/// label string is the unlabeled series.
struct Family {
    help: String,
    series: BTreeMap<String, Metric>,
}

/// The metrics registry: name → family → labeled series.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// The process-global registry every instrumented crate writes to.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Render a label set as the canonical `key="value"` list (sorted input
/// expected; we keep caller order, which instrumentation sites fix).
fn label_string(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",")
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// Fresh private registry (tests; production code uses [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family
            .series
            .entry(label_string(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or create a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    /// Get or create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    /// Get or create the unlabeled latency histogram `name` with the
    /// default [`LATENCY_BUCKETS_NS`] bounds.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], LATENCY_BUCKETS_NS)
    }

    /// Get or create a labeled histogram series with explicit bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &'static [u64],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    /// Zero every registered series (names and help text are kept).
    pub fn reset(&self) {
        self.reset_prefix("");
    }

    /// Zero every series whose family name starts with `prefix` — how a
    /// subsystem (`xst_storage_…`) resets its own metrics without
    /// touching anyone else's.
    pub fn reset_prefix(&self, prefix: &str) {
        let families = self.families.lock().expect("metrics registry poisoned");
        for (name, family) in families.iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            for metric in family.series.values() {
                match metric {
                    Metric::Counter(c) => c.reset(),
                    Metric::Gauge(g) => g.reset(),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` per family,
    /// one sample line per series (histograms expand to cumulative
    /// `_bucket{le=…}` lines plus `_sum` and `_count`).
    pub fn export_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = family
                .series
                .values()
                .next()
                .map(Metric::kind)
                .unwrap_or("untyped");
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&sample_line(name, labels, &c.get().to_string()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&sample_line(name, labels, &format!("{}", g.get())));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (bound, bucket) in snap.bounds.iter().zip(&snap.buckets) {
                            cumulative += bucket;
                            let le = merge_labels(labels, &format!("le=\"{bound}\""));
                            out.push_str(&sample_line(
                                &format!("{name}_bucket"),
                                &le,
                                &cumulative.to_string(),
                            ));
                        }
                        cumulative += snap.overflow;
                        let le = merge_labels(labels, "le=\"+Inf\"");
                        out.push_str(&sample_line(
                            &format!("{name}_bucket"),
                            &le,
                            &cumulative.to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_sum"),
                            labels,
                            &snap.sum.to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_count"),
                            labels,
                            &snap.count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON snapshot of every family, for machine consumers:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    /// Series keys are `name` or `name{labels}`.
    pub fn export_json(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut counters: Vec<String> = Vec::new();
        let mut gauges: Vec<String> = Vec::new();
        let mut histograms: Vec<String> = Vec::new();
        for (name, family) in families.iter() {
            for (labels, metric) in &family.series {
                let key = escape_json(&if labels.is_empty() {
                    name.clone()
                } else {
                    format!("{name}{{{labels}}}")
                });
                match metric {
                    Metric::Counter(c) => counters.push(format!("\"{key}\": {}", c.get())),
                    Metric::Gauge(g) => {
                        let v = g.get();
                        let v = if v.is_finite() { v } else { 0.0 };
                        gauges.push(format!("\"{key}\": {v}"));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let buckets: Vec<String> = snap
                            .bounds
                            .iter()
                            .zip(&snap.buckets)
                            .map(|(b, c)| format!("[{b}, {c}]"))
                            .chain(std::iter::once(format!("[null, {}]", snap.overflow)))
                            .collect();
                        histograms.push(format!(
                            "\"{key}\": {{\"buckets\": [{}], \"sum\": {}, \"count\": {}}}",
                            buckets.join(", "),
                            snap.sum,
                            snap.count
                        ));
                    }
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

fn merge_labels(existing: &str, extra: &str) -> String {
    if existing.is_empty() {
        extra.to_string()
    } else {
        format!("{existing},{extra}")
    }
}

fn sample_line(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::obs_lock;

    #[test]
    fn histogram_concurrent_writers_equal_sequential_sum() {
        let _serial = obs_lock();
        crate::enable();
        let reg = Registry::new();
        let shared = reg.histogram("t_concurrent_ns", "concurrent target");
        const WRITERS: usize = 8;
        const PER_WRITER: usize = 5_000;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        // Spread observations across every bucket incl. overflow.
                        shared.observe(((w * PER_WRITER + i) as u64 * 37) % 6_000_000_000);
                    }
                });
            }
        });
        // The sequential oracle: same observations, one thread.
        let oracle = reg.histogram("t_oracle_ns", "sequential oracle");
        for w in 0..WRITERS {
            for i in 0..PER_WRITER {
                oracle.observe(((w * PER_WRITER + i) as u64 * 37) % 6_000_000_000);
            }
        }
        crate::disable();
        let got = shared.snapshot();
        let want = oracle.snapshot();
        assert_eq!(got.count, (WRITERS * PER_WRITER) as u64);
        assert_eq!(got.buckets, want.buckets);
        assert_eq!(got.overflow, want.overflow);
        assert_eq!(got.sum, want.sum);
    }

    #[test]
    fn per_thread_histograms_merge_to_the_shared_family() {
        let _serial = obs_lock();
        crate::enable();
        let reg = Registry::new();
        let target = reg.histogram("t_merge_ns", "merge target");
        let locals: Vec<Arc<Histogram>> = (0..8)
            .map(|i| {
                reg.histogram_with(
                    "t_merge_local_ns",
                    "per-thread",
                    &[("t", &i.to_string())],
                    LATENCY_BUCKETS_NS,
                )
            })
            .collect();
        std::thread::scope(|s| {
            for (i, local) in locals.iter().enumerate() {
                let local = Arc::clone(local);
                s.spawn(move || {
                    for v in 0..1_000u64 {
                        local.observe(v * (i as u64 + 1) * 1_000);
                    }
                });
            }
        });
        for local in &locals {
            target.merge_from(&local.snapshot());
        }
        crate::disable();
        let merged = target.snapshot();
        assert_eq!(merged.count, 8_000);
        let folded = locals
            .iter()
            .map(|l| l.snapshot())
            .reduce(|a, b| a.merged(&b))
            .unwrap();
        assert_eq!(merged, folded);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _serial = obs_lock();
        crate::disable();
        let reg = Registry::new();
        let c = reg.counter("t_off_total", "gated");
        let g = reg.gauge("t_off_gauge", "gated");
        let h = reg.histogram("t_off_ns", "gated");
        c.add(100);
        c.inc();
        g.set(42.0);
        h.observe(1_000);
        h.observe_since(Instant::now());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert!(snap.buckets.iter().all(|&b| b == 0));
        // The series still exists (registration is not gated) but is zero.
        let text = reg.export_prometheus();
        assert!(text.contains("t_off_total 0"), "{text}");
    }

    #[test]
    fn exposition_format_is_prometheus_shaped() {
        let _serial = obs_lock();
        crate::enable();
        let reg = Registry::new();
        reg.counter_with("t_hits_total", "hits per shard", &[("shard", "0")])
            .add(3);
        reg.counter_with("t_hits_total", "hits per shard", &[("shard", "1")])
            .add(4);
        reg.gauge("t_ratio", "a ratio").set(0.75);
        let h = reg.histogram("t_lat_ns", "latency");
        h.observe(100); // first bucket (≤256)
        h.observe(2_000); // third bucket (≤4096)
        h.observe(10_000_000_000); // overflow
        crate::disable();
        let text = reg.export_prometheus();
        assert!(
            text.contains("# HELP t_hits_total hits per shard"),
            "{text}"
        );
        assert!(text.contains("# TYPE t_hits_total counter"), "{text}");
        assert!(text.contains("t_hits_total{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("t_hits_total{shard=\"1\"} 4"), "{text}");
        assert!(text.contains("# TYPE t_ratio gauge"), "{text}");
        assert!(text.contains("t_ratio 0.75"), "{text}");
        assert!(text.contains("# TYPE t_lat_ns histogram"), "{text}");
        assert!(text.contains("t_lat_ns_bucket{le=\"256\"} 1"), "{text}");
        assert!(text.contains("t_lat_ns_bucket{le=\"4096\"} 2"), "{text}");
        assert!(text.contains("t_lat_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("t_lat_ns_count 3"), "{text}");

        let json = reg.export_json();
        assert!(
            json.contains("\"t_hits_total{shard=\\\"0\\\"}\": 3"),
            "{json}"
        );
        assert!(json.contains("\"t_ratio\": 0.75"), "{json}");
        assert!(json.contains("\"sum\""), "{json}");
    }

    #[test]
    fn reset_prefix_zeroes_only_the_subsystem() {
        let _serial = obs_lock();
        crate::enable();
        let reg = Registry::new();
        let a = reg.counter("sub_a_total", "a");
        let b = reg.counter("other_b_total", "b");
        a.add(5);
        b.add(7);
        reg.reset_prefix("sub_");
        assert_eq!(a.get(), 0);
        assert_eq!(b.get(), 7);
        reg.reset();
        assert_eq!(b.get(), 0);
        crate::disable();
    }

    #[test]
    fn handles_are_shared_by_name_and_labels() {
        let _serial = obs_lock();
        crate::enable();
        let reg = Registry::new();
        let c1 = reg.counter("t_shared_total", "shared");
        let c2 = reg.counter("t_shared_total", "ignored on re-register");
        c1.add(1);
        c2.add(1);
        assert_eq!(c1.get(), 2, "same underlying series");
        crate::disable();
    }
}
