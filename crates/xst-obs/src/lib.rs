//! # xst-obs — observability substrate for the XST engine
//!
//! The build environment is offline, so this crate implements in-house
//! (over `std` only) the two facilities a production engine cannot run
//! without:
//!
//! * [`span`] — hierarchical **trace spans**: RAII guards created by the
//!   [`span!`] macro record wall-time, parent/child links, and `key=value`
//!   attributes into a per-thread buffer that drains to a global
//!   [`Collector`](span::Collector) when each root span closes. The
//!   collected records reconstruct the full call tree
//!   ([`span::span_tree`]) — the substrate behind the shell's `.trace`
//!   command and the query layer's `EXPLAIN ANALYZE`.
//! * [`metrics`] — a **metrics registry** of named counters, gauges, and
//!   fixed-bucket latency histograms. All hot-path state is atomic, so
//!   concurrent writers merge for free and snapshots never stop the
//!   world. Two exporters: Prometheus-style text exposition
//!   ([`Registry::export_prometheus`](metrics::Registry::export_prometheus))
//!   and a JSON snapshot
//!   ([`Registry::export_json`](metrics::Registry::export_json)).
//! * [`cost`] — **per-request resource accounting**: a task-scoped
//!   [`QueryCost`](cost::QueryCost) accumulator the server opens around
//!   each request, charged by the storage and query layers (pool
//!   hits/misses, WAL appends/fsyncs, kernel fan-outs, retries,
//!   conflicts, plan nodes/rows) so work is attributable to the request
//!   that caused it, not just to a global counter.
//! * [`reqlog`] — the **structured request log**: a bounded ring of
//!   per-request records (session, txn, kind, wall time, cost bill,
//!   outcome, trace id) plus a threshold-gated slow-query ring, behind
//!   the shell's `.top`/`.slow` and the server's `RequestLog` request.
//!
//! ## Distributed tracing
//!
//! Spans carry stable 64-bit **trace ids** minted at each root span (via
//! a SplitMix64-mixed process-local counter, so client and server
//! processes on one machine draw from different sequences). A
//! [`TraceContext`] — `{trace_id, parent_span}` — is the portable
//! identity of an in-flight trace: the wire protocol carries it beside
//! each request (protocol v2+), and the serving thread
//! [`adopt`](span::adopt)s it so its root spans join the remote
//! caller's trace, parented under the caller's span id. The result is
//! one stitched trace per wire request: the client's `client.request`
//! root and the server's `session.request` → `query.eval` → `txn.*` /
//! `wal.*` subtree all share one trace id.
//!
//! ### Export schema (`xst-trace/1`)
//!
//! [`span::export_trace_json`] renders a span batch as JSON:
//!
//! ```json
//! {"schema":"xst-trace/1","spans":[
//!   {"name":"client.request","id":12,"trace_id":"0x9e3779b97f4a7c15",
//!    "parent":null,"thread":0,"start_ns":100,"duration_ns":900,
//!    "attrs":{"kind":"eval"},"children":[ ... ]}]}
//! ```
//!
//! `trace_id` is a `0x`-prefixed 16-digit hex string (grep-stable, no
//! JSON number-precision hazard); `id`/`parent` are process-local span
//! ids; a parent that lives in another process makes the span a root of
//! the local forest, so partial dumps always render. The server's
//! `TraceDump` request and the shell's `.trace export` both emit this
//! document.
//!
//! ## The no-op fast path
//!
//! One process-global `AtomicBool` gates every instrumentation site. When
//! the collector is disabled (the default), [`enabled`] is a single
//! relaxed atomic load and every record/observe/span call returns
//! immediately — nothing is allocated, timed, or stored. Experiment E12
//! measures this: the disabled-collector E1 workload is indistinguishable
//! from an uninstrumented run (see EXPERIMENTS.md).
//!
//! ## Who records here
//!
//! The storage layer registers the `xst_storage_*` families (buffer-pool
//! hit ratio, WAL append latency, retry/backoff counts, injected faults)
//! and the transaction layer the `xst_txn_*` families (`begins`,
//! `commits`, `aborts`, `conflicts` counters plus the `xst_txn_commit_ns`
//! latency histogram); the query layer feeds spans to `EXPLAIN ANALYZE`.
//! All of it is visible in the shell via `.metrics` and `.trace`.
//!
//! ```
//! xst_obs::enable();
//! {
//!     let _root = xst_obs::span!("demo.outer", items = 3);
//!     let _leaf = xst_obs::span!("demo.inner");
//! }
//! let spans = xst_obs::collector().take_spans();
//! assert!(spans.iter().any(|s| s.name == "demo.outer"));
//!
//! let hits = xst_obs::registry().counter("demo_hits_total", "demo counter");
//! hits.add(2);
//! assert!(xst_obs::registry()
//!     .export_prometheus()
//!     .contains("demo_hits_total"));
//! xst_obs::disable();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod metrics;
pub mod names;
pub mod reqlog;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-global collector switch. Relaxed ordering is deliberate:
/// instrumentation sites only need an eventually-consistent view, and a
/// relaxed load is the cheapest possible gate.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the collector on? One relaxed atomic load — this is the entire cost
/// of a disabled instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the collector on: spans record and metrics accumulate.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the collector off: every instrumentation site degrades to a single
/// atomic load. Already-collected spans and metric values are kept until
/// explicitly taken or reset.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

pub use cost::{CostGuard, QueryCost};
pub use metrics::{registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use reqlog::{request_log, RequestLog, RequestRecord};
pub use span::{
    collector, export_trace_json, span_tree, Collector, SpanGuard, SpanNode, SpanRecord,
    TraceContext,
};

/// The enable/disable switch is process-global, so tests that toggle it
/// serialize on one lock (the test harness runs them on many threads).
#[cfg(test)]
pub(crate) mod tests_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    pub fn obs_lock() -> MutexGuard<'static, ()> {
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
