//! Per-request resource accounting.
//!
//! A [`QueryCost`] is the itemized bill for one request: buffer-pool
//! hits/misses, WAL appends and fsyncs, parallel-kernel fan-outs,
//! storage retries, commit conflicts, and evaluated plan nodes/rows.
//! The engine's existing *global* counters answer "how busy is the
//! system"; this module answers "which request did that work".
//!
//! Accounting is **task-scoped**: the server (or shell) opens a scope
//! with [`begin`] on the thread that serves a request, the storage and
//! query layers charge into the ambient scope through the `add_*`
//! helpers placed beside their existing metric sites, and the scope is
//! closed with [`CostGuard::take`] to harvest the bill. Scopes nest —
//! an inner scope's bill also lands on the enclosing scope, so a
//! compound request still totals correctly.
//!
//! The disabled path is the crate-wide contract: every `add_*` helper
//! bails on one relaxed atomic load when the collector is off, and even
//! when on it costs only a thread-local flag test unless a scope is
//! actually open. Experiment E17 measures both paths.
//!
//! Worker threads spawned *inside* a request (parallel kernels) charge
//! their own thread's scope, which the request thread does not open —
//! so fan-out is counted at the dispatch site (on the request thread)
//! and per-chunk work inside workers is not itemized. That is the same
//! boundary the span layer draws for thread-local stacks.

use std::cell::{Cell, RefCell};
use std::fmt;

/// Shard slots a [`QueryCost`] attributes scatter-gather work to. Shard
/// indexes at or above the last slot aggregate into it, so the struct
/// stays `Copy` regardless of the engine's configured shard count.
pub const SHARD_SLOTS: usize = 8;

/// The itemized resource bill of one request.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Buffer-pool page hits.
    pub pool_hits: u64,
    /// Buffer-pool page misses (page faulted in from the disk image).
    pub pool_misses: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL fsyncs awaited (group commits this request rode or led).
    pub wal_fsyncs: u64,
    /// Parallel kernel invocations that fanned out to worker threads.
    pub par_fanouts: u64,
    /// Storage operations retried after a transient fault.
    pub retries: u64,
    /// First-committer-wins conflicts this request lost.
    pub conflicts: u64,
    /// Plan nodes the query evaluator executed.
    pub eval_nodes: u64,
    /// Rows (set members) the query evaluator produced.
    pub rows_out: u64,
    /// Scatter-gather fragment operations billed per shard (index =
    /// shard id, last slot aggregates ids `>= SHARD_SLOTS - 1`), so one
    /// wire request attributes its work to the shards that did it.
    pub shard_ops: [u64; SHARD_SLOTS],
}

impl QueryCost {
    const fn zero() -> QueryCost {
        QueryCost {
            pool_hits: 0,
            pool_misses: 0,
            wal_appends: 0,
            wal_fsyncs: 0,
            par_fanouts: 0,
            retries: 0,
            conflicts: 0,
            eval_nodes: 0,
            rows_out: 0,
            shard_ops: [0; SHARD_SLOTS],
        }
    }

    /// Total scatter-gather fragment operations across all shard slots.
    pub fn shard_ops_total(&self) -> u64 {
        self.shard_ops.iter().copied().sum()
    }

    /// True iff no component was charged.
    pub fn is_zero(&self) -> bool {
        *self == QueryCost::zero()
    }

    /// Fold `other` into `self`, component-wise (saturating).
    pub fn merge(&mut self, other: &QueryCost) {
        self.pool_hits = self.pool_hits.saturating_add(other.pool_hits);
        self.pool_misses = self.pool_misses.saturating_add(other.pool_misses);
        self.wal_appends = self.wal_appends.saturating_add(other.wal_appends);
        self.wal_fsyncs = self.wal_fsyncs.saturating_add(other.wal_fsyncs);
        self.par_fanouts = self.par_fanouts.saturating_add(other.par_fanouts);
        self.retries = self.retries.saturating_add(other.retries);
        self.conflicts = self.conflicts.saturating_add(other.conflicts);
        self.eval_nodes = self.eval_nodes.saturating_add(other.eval_nodes);
        self.rows_out = self.rows_out.saturating_add(other.rows_out);
        for (slot, v) in self.shard_ops.iter_mut().zip(other.shard_ops.iter()) {
            *slot = slot.saturating_add(*v);
        }
    }
}

impl fmt::Display for QueryCost {
    /// Compact `key=value` rendering of the non-zero components, or `-`
    /// when nothing was charged (the request-log column format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: [(&str, u64); 9] = [
            ("pool_hit", self.pool_hits),
            ("pool_miss", self.pool_misses),
            ("wal", self.wal_appends),
            ("fsync", self.wal_fsyncs),
            ("fanout", self.par_fanouts),
            ("retry", self.retries),
            ("conflict", self.conflicts),
            ("nodes", self.eval_nodes),
            ("rows", self.rows_out),
        ];
        let mut wrote = false;
        for (key, v) in parts {
            if v > 0 {
                if wrote {
                    f.write_str(" ")?;
                }
                write!(f, "{key}={v}")?;
                wrote = true;
            }
        }
        for (i, v) in self.shard_ops.iter().enumerate() {
            if *v > 0 {
                if wrote {
                    f.write_str(" ")?;
                }
                write!(f, "s{i}={v}")?;
                wrote = true;
            }
        }
        if !wrote {
            f.write_str("-")?;
        }
        Ok(())
    }
}

thread_local! {
    /// Open-scope nesting depth on this thread (0 = nothing to charge).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The innermost open scope's accumulator.
    static COST: RefCell<QueryCost> = const { RefCell::new(QueryCost::zero()) };
}

/// RAII scope for one request's bill; close with [`CostGuard::take`] to
/// harvest it (dropping without `take` still restores the outer scope
/// and charges it the inner bill).
pub struct CostGuard {
    prev: Option<QueryCost>,
}

/// Open a cost scope on this thread: subsequent `add_*` charges land on
/// it until the guard is taken or dropped.
pub fn begin() -> CostGuard {
    let prev = COST.with(|c| std::mem::take(&mut *c.borrow_mut()));
    DEPTH.with(|d| d.set(d.get() + 1));
    CostGuard { prev: Some(prev) }
}

/// Is a cost scope open on this thread?
pub fn active() -> bool {
    DEPTH.with(Cell::get) > 0
}

impl CostGuard {
    fn finish(&mut self) -> QueryCost {
        let Some(prev) = self.prev.take() else {
            return QueryCost::zero();
        };
        let depth = DEPTH.with(|d| {
            let depth = d.get().saturating_sub(1);
            d.set(depth);
            depth
        });
        COST.with(|c| {
            let mut cur = c.borrow_mut();
            let inner = *cur;
            *cur = if depth == 0 {
                // Outermost scope closed: drop any stray residue so an
                // unscoped charge can never leak into the next request.
                QueryCost::zero()
            } else {
                // Restore the enclosing scope and charge it the inner
                // bill, so nested scopes total correctly.
                let mut outer = prev;
                outer.merge(&inner);
                outer
            };
            inner
        })
    }

    /// Close the scope and return the bill accrued inside it.
    pub fn take(mut self) -> QueryCost {
        self.finish()
    }
}

impl Drop for CostGuard {
    fn drop(&mut self) {
        if self.prev.is_some() {
            self.finish();
        }
    }
}

/// Charge the ambient scope, if the collector is on and a scope is open.
#[inline]
fn tally(f: impl FnOnce(&mut QueryCost)) {
    if !crate::enabled() || DEPTH.with(Cell::get) == 0 {
        return;
    }
    COST.with(|c| f(&mut c.borrow_mut()));
}

/// Charge one buffer-pool hit.
#[inline]
pub fn add_pool_hit() {
    tally(|c| c.pool_hits += 1);
}

/// Charge one buffer-pool miss.
#[inline]
pub fn add_pool_miss() {
    tally(|c| c.pool_misses += 1);
}

/// Charge one WAL record append.
#[inline]
pub fn add_wal_append() {
    tally(|c| c.wal_appends += 1);
}

/// Charge one WAL fsync.
#[inline]
pub fn add_wal_fsync() {
    tally(|c| c.wal_fsyncs += 1);
}

/// Charge one parallel-kernel fan-out.
#[inline]
pub fn add_par_fanout() {
    tally(|c| c.par_fanouts += 1);
}

/// Charge one retried storage operation.
#[inline]
pub fn add_retry() {
    tally(|c| c.retries += 1);
}

/// Charge one lost first-committer-wins conflict.
#[inline]
pub fn add_conflict() {
    tally(|c| c.conflicts += 1);
}

/// Charge one finished evaluation: `nodes` executed plan nodes
/// producing `rows` output members.
#[inline]
pub fn add_eval(nodes: u64, rows: u64) {
    tally(|c| {
        c.eval_nodes += nodes;
        c.rows_out += rows;
    });
}

/// Charge one scatter-gather fragment operation executed on behalf of
/// shard `shard` (slots above [`SHARD_SLOTS`]` - 1` aggregate into the
/// last slot).
#[inline]
pub fn add_shard_op(shard: usize) {
    tally(|c| c.shard_ops[shard.min(SHARD_SLOTS - 1)] += 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::obs_lock;

    #[test]
    fn charges_land_only_inside_an_open_scope() {
        let _serial = obs_lock();
        crate::enable();
        add_pool_hit(); // no scope: dropped
        let scope = begin();
        add_pool_hit();
        add_wal_append();
        add_eval(3, 40);
        let bill = scope.take();
        assert_eq!(bill.pool_hits, 1);
        assert_eq!(bill.wal_appends, 1);
        assert_eq!(bill.eval_nodes, 3);
        assert_eq!(bill.rows_out, 40);
        // After the outermost scope closes, charges are dropped again.
        add_conflict();
        let bill = begin().take();
        assert!(bill.is_zero(), "{bill}");
        crate::disable();
    }

    #[test]
    fn nested_scopes_bill_the_outer_scope_too() {
        let _serial = obs_lock();
        crate::enable();
        let outer = begin();
        add_retry();
        let inner = begin();
        add_pool_miss();
        add_pool_miss();
        let inner_bill = inner.take();
        assert_eq!(inner_bill.pool_misses, 2);
        assert_eq!(inner_bill.retries, 0, "outer charges stay outside");
        add_wal_fsync();
        let outer_bill = outer.take();
        assert_eq!(outer_bill.retries, 1);
        assert_eq!(outer_bill.pool_misses, 2, "inner bill rolls up");
        assert_eq!(outer_bill.wal_fsyncs, 1);
        crate::disable();
    }

    #[test]
    fn disabled_collector_charges_nothing() {
        let _serial = obs_lock();
        crate::disable();
        let scope = begin();
        add_pool_hit();
        add_wal_append();
        assert!(scope.take().is_zero());
    }

    #[test]
    fn display_is_compact_and_dash_when_empty() {
        let mut c = QueryCost::default();
        assert_eq!(c.to_string(), "-");
        c.pool_hits = 2;
        c.conflicts = 1;
        assert_eq!(c.to_string(), "pool_hit=2 conflict=1");
        c.shard_ops[1] = 3;
        assert_eq!(c.to_string(), "pool_hit=2 conflict=1 s1=3");
    }

    #[test]
    fn shard_ops_attribute_and_clamp_to_the_last_slot() {
        let _serial = obs_lock();
        crate::enable();
        let scope = begin();
        add_shard_op(0);
        add_shard_op(2);
        add_shard_op(2);
        add_shard_op(SHARD_SLOTS + 40); // beyond the slots: aggregates
        let bill = scope.take();
        assert_eq!(bill.shard_ops[0], 1);
        assert_eq!(bill.shard_ops[2], 2);
        assert_eq!(bill.shard_ops[SHARD_SLOTS - 1], 1);
        assert_eq!(bill.shard_ops_total(), 4);
        crate::disable();
    }
}
