//! Canonical metric names.
//!
//! Every `xst_*` metric family has exactly one constant here, and every
//! registration site in the workspace goes through it — `xst-lint`'s
//! metric-name rule rejects any `xst_`-prefixed string literal outside
//! this module, so a family can be renamed in one place and duplicate
//! registrations cannot drift apart silently.

/// Worker fan-outs performed by the parallel set-operation kernels.
pub const CORE_PAR_FANOUTS_TOTAL: &str = "xst_core_par_fanouts_total";
/// Chunks dispatched across all parallel kernel fan-outs.
pub const CORE_PAR_CHUNKS_TOTAL: &str = "xst_core_par_chunks_total";

/// Common prefix of every storage-layer metric.
pub const STORAGE_PREFIX: &str = "xst_storage_";
/// Common prefix of the page I/O metric family (reset as a unit).
pub const STORAGE_PAGE_PREFIX: &str = "xst_storage_page_";
/// Common prefix of the buffer-pool metric family (reset as a unit).
pub const STORAGE_POOL_PREFIX: &str = "xst_storage_pool_";

/// Nanoseconds spent reading pages from disk.
pub const STORAGE_PAGE_READ_NS: &str = "xst_storage_page_read_ns";
/// Nanoseconds spent writing pages to disk.
pub const STORAGE_PAGE_WRITE_NS: &str = "xst_storage_page_write_ns";

/// Buffer-pool hits.
pub const STORAGE_POOL_HITS_TOTAL: &str = "xst_storage_pool_hits_total";
/// Buffer-pool misses.
pub const STORAGE_POOL_MISSES_TOTAL: &str = "xst_storage_pool_misses_total";
/// Buffer-pool evictions.
pub const STORAGE_POOL_EVICTIONS_TOTAL: &str = "xst_storage_pool_evictions_total";
/// Buffer-pool hit ratio (gauge, 0–1).
pub const STORAGE_POOL_HIT_RATIO: &str = "xst_storage_pool_hit_ratio";
/// Number of buffer-pool shards (gauge).
pub const STORAGE_POOL_SHARDS: &str = "xst_storage_pool_shards";

/// Nanoseconds spent appending WAL records.
pub const STORAGE_WAL_APPEND_NS: &str = "xst_storage_wal_append_ns";
/// Nanoseconds spent in WAL fsync.
pub const STORAGE_WAL_FSYNC_NS: &str = "xst_storage_wal_fsync_ns";
/// WAL records appended.
pub const STORAGE_WAL_APPENDS_TOTAL: &str = "xst_storage_wal_appends_total";
/// WAL bytes appended.
pub const STORAGE_WAL_BYTES_TOTAL: &str = "xst_storage_wal_bytes_total";
/// WAL group commits performed.
pub const STORAGE_WAL_GROUP_COMMITS_TOTAL: &str = "xst_storage_wal_group_commits_total";
/// WAL records flushed via group commits.
pub const STORAGE_WAL_GROUP_COMMIT_RECORDS_TOTAL: &str =
    "xst_storage_wal_group_commit_records_total";

/// Storage operations retried after an injected/transient fault.
pub const STORAGE_RETRIES_TOTAL: &str = "xst_storage_retries_total";
/// Storage operations abandoned after exhausting the retry budget.
pub const STORAGE_RETRY_GIVE_UPS_TOTAL: &str = "xst_storage_retry_give_ups_total";
/// Nanoseconds of simulated retry backoff.
pub const STORAGE_RETRY_BACKOFF_NS: &str = "xst_storage_retry_backoff_ns";
/// Faults injected by the deterministic fault plan.
pub const STORAGE_FAULTS_INJECTED_TOTAL: &str = "xst_storage_faults_injected_total";

/// Common prefix of every network-server metric.
pub const SERVER_PREFIX: &str = "xst_server_";
/// Connections accepted by the server (admitted into a session).
pub const SERVER_ACCEPTED_TOTAL: &str = "xst_server_accepted_total";
/// Connections rejected by admission control (cap + queue both full).
pub const SERVER_ADMISSION_REJECTED_TOTAL: &str = "xst_server_admission_rejected_total";
/// Sessions currently open (gauge).
pub const SERVER_ACTIVE_SESSIONS: &str = "xst_server_active_sessions";
/// Connections waiting in the admission queue for a session slot (gauge).
pub const SERVER_QUEUE_DEPTH: &str = "xst_server_queue_depth";
/// Requests served across all sessions.
pub const SERVER_REQUESTS_TOTAL: &str = "xst_server_requests_total";
/// Malformed frames / protocol violations answered with a structured error.
pub const SERVER_PROTOCOL_ERRORS_TOTAL: &str = "xst_server_protocol_errors_total";
/// Nanoseconds spent handling one request (decode → dispatch → encode).
pub const SERVER_REQUEST_NS: &str = "xst_server_request_ns";

/// Requests that arrived wrapped in a client trace context (v2 peers).
pub const SERVER_TRACED_REQUESTS_TOTAL: &str = "xst_server_traced_requests_total";

/// Common prefix of every client-side metric.
pub const CLIENT_PREFIX: &str = "xst_client_";
/// Requests issued by `xst-client` connections.
pub const CLIENT_REQUESTS_TOTAL: &str = "xst_client_requests_total";
/// Nanoseconds from request write to response decode on the client.
pub const CLIENT_REQUEST_NS: &str = "xst_client_request_ns";

/// Requests recorded in the structured request log.
pub const REQLOG_RECORDS_TOTAL: &str = "xst_reqlog_records_total";
/// Requests whose wall time crossed the slow-query threshold.
pub const REQLOG_SLOW_TOTAL: &str = "xst_reqlog_slow_total";

/// Transactions begun.
pub const TXN_BEGINS_TOTAL: &str = "xst_txn_begins_total";
/// Transactions committed.
pub const TXN_COMMITS_TOTAL: &str = "xst_txn_commits_total";
/// Transactions aborted.
pub const TXN_ABORTS_TOTAL: &str = "xst_txn_aborts_total";
/// Commit-time conflicts detected.
pub const TXN_CONFLICTS_TOTAL: &str = "xst_txn_conflicts_total";
/// Nanoseconds spent committing transactions.
pub const TXN_COMMIT_NS: &str = "xst_txn_commit_ns";
/// Transactions currently open — begun but neither committed nor aborted
/// (gauge; pins a snapshot identity each).
pub const TXN_ACTIVE: &str = "xst_txn_active";

/// Common prefix of every sharded-execution metric.
pub const SHARD_PREFIX: &str = "xst_shard_";
/// Shards configured on the serving engine (gauge).
pub const SHARD_COUNT: &str = "xst_shard_count";
/// Distributed transactions begun on a sharded engine.
pub const SHARD_TXN_BEGINS_TOTAL: &str = "xst_shard_txn_begins_total";
/// Distributed transactions committed via the single-shard fast path
/// (one participant, no coordinator decision record needed).
pub const SHARD_SINGLE_COMMITS_TOTAL: &str = "xst_shard_single_commits_total";
/// Distributed transactions committed through full two-phase commit.
pub const SHARD_2PC_COMMITS_TOTAL: &str = "xst_shard_2pc_commits_total";
/// Two-phase commits aborted before their decision record became durable.
pub const SHARD_2PC_ABORTS_TOTAL: &str = "xst_shard_2pc_aborts_total";
/// Per-shard prepare flushes performed (one per participating shard).
pub const SHARD_2PC_PREPARES_TOTAL: &str = "xst_shard_2pc_prepares_total";
/// In-doubt prepared transactions resolved from the coordinator's
/// decision record during recovery (committed or dropped).
pub const SHARD_2PC_IN_DOUBT_RESOLVED_TOTAL: &str = "xst_shard_2pc_in_doubt_resolved_total";
/// Scatter stage: per-shard fragment kernel dispatches.
pub const SHARD_SCATTER_OPS_TOTAL: &str = "xst_shard_scatter_ops_total";
/// Gather stage: ordered fragment merges performed.
pub const SHARD_GATHER_MERGES_TOTAL: &str = "xst_shard_gather_merges_total";

/// Common prefix of every cross-process coordinator metric.
pub const COORD_PREFIX: &str = "xst_coord_";
/// Shard processes the wire coordinator is connected to (gauge).
pub const COORD_SHARDS: &str = "xst_coord_shards";
/// Distributed transactions begun by the wire coordinator.
pub const COORD_TXN_BEGINS_TOTAL: &str = "xst_coord_txn_begins_total";
/// Wire commits that touched one shard process (no 2PC round).
pub const COORD_SINGLE_COMMITS_TOTAL: &str = "xst_coord_single_commits_total";
/// Wire commits acknowledged by a durable coordinator decision.
pub const COORD_2PC_COMMITS_TOTAL: &str = "xst_coord_2pc_commits_total";
/// Wire commits aborted before a decision was recorded.
pub const COORD_2PC_ABORTS_TOTAL: &str = "xst_coord_2pc_aborts_total";
/// Fragment reads scattered to shard processes over the wire.
pub const COORD_FRAG_READS_TOTAL: &str = "xst_coord_frag_reads_total";
/// Resolve rounds delivered to shard processes (recovery and reconnect).
pub const COORD_RESOLVES_TOTAL: &str = "xst_coord_resolves_total";
/// Committed decisions replayed from the decision log at coordinator
/// recovery.
pub const COORD_DECISIONS_REPLAYED_TOTAL: &str = "xst_coord_decisions_replayed_total";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_unique_and_prefixed() {
        let all = [
            super::CORE_PAR_FANOUTS_TOTAL,
            super::CORE_PAR_CHUNKS_TOTAL,
            super::STORAGE_PAGE_READ_NS,
            super::STORAGE_PAGE_WRITE_NS,
            super::STORAGE_POOL_HITS_TOTAL,
            super::STORAGE_POOL_MISSES_TOTAL,
            super::STORAGE_POOL_EVICTIONS_TOTAL,
            super::STORAGE_POOL_HIT_RATIO,
            super::STORAGE_POOL_SHARDS,
            super::STORAGE_WAL_APPEND_NS,
            super::STORAGE_WAL_FSYNC_NS,
            super::STORAGE_WAL_APPENDS_TOTAL,
            super::STORAGE_WAL_BYTES_TOTAL,
            super::STORAGE_WAL_GROUP_COMMITS_TOTAL,
            super::STORAGE_WAL_GROUP_COMMIT_RECORDS_TOTAL,
            super::STORAGE_RETRIES_TOTAL,
            super::STORAGE_RETRY_GIVE_UPS_TOTAL,
            super::STORAGE_RETRY_BACKOFF_NS,
            super::STORAGE_FAULTS_INJECTED_TOTAL,
            super::SERVER_ACCEPTED_TOTAL,
            super::SERVER_ADMISSION_REJECTED_TOTAL,
            super::SERVER_ACTIVE_SESSIONS,
            super::SERVER_QUEUE_DEPTH,
            super::SERVER_REQUESTS_TOTAL,
            super::SERVER_PROTOCOL_ERRORS_TOTAL,
            super::SERVER_REQUEST_NS,
            super::SERVER_TRACED_REQUESTS_TOTAL,
            super::CLIENT_REQUESTS_TOTAL,
            super::CLIENT_REQUEST_NS,
            super::REQLOG_RECORDS_TOTAL,
            super::REQLOG_SLOW_TOTAL,
            super::TXN_BEGINS_TOTAL,
            super::TXN_COMMITS_TOTAL,
            super::TXN_ABORTS_TOTAL,
            super::TXN_CONFLICTS_TOTAL,
            super::TXN_COMMIT_NS,
            super::TXN_ACTIVE,
            super::SHARD_COUNT,
            super::SHARD_TXN_BEGINS_TOTAL,
            super::SHARD_SINGLE_COMMITS_TOTAL,
            super::SHARD_2PC_COMMITS_TOTAL,
            super::SHARD_2PC_ABORTS_TOTAL,
            super::SHARD_2PC_PREPARES_TOTAL,
            super::SHARD_2PC_IN_DOUBT_RESOLVED_TOTAL,
            super::SHARD_SCATTER_OPS_TOTAL,
            super::SHARD_GATHER_MERGES_TOTAL,
            super::COORD_SHARDS,
            super::COORD_TXN_BEGINS_TOTAL,
            super::COORD_SINGLE_COMMITS_TOTAL,
            super::COORD_2PC_COMMITS_TOTAL,
            super::COORD_2PC_ABORTS_TOTAL,
            super::COORD_FRAG_READS_TOTAL,
            super::COORD_RESOLVES_TOTAL,
            super::COORD_DECISIONS_REPLAYED_TOTAL,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for name in all {
            assert!(name.starts_with("xst_"), "{name}");
            assert!(seen.insert(name), "duplicate metric name {name}");
        }
        for page in [super::STORAGE_PAGE_READ_NS, super::STORAGE_PAGE_WRITE_NS] {
            assert!(page.starts_with(super::STORAGE_PAGE_PREFIX));
        }
        assert!(super::STORAGE_POOL_HITS_TOTAL.starts_with(super::STORAGE_POOL_PREFIX));
        assert!(super::STORAGE_PAGE_PREFIX.starts_with(super::STORAGE_PREFIX));
        for client in [super::CLIENT_REQUESTS_TOTAL, super::CLIENT_REQUEST_NS] {
            assert!(client.starts_with(super::CLIENT_PREFIX));
        }
        assert!(super::SERVER_TRACED_REQUESTS_TOTAL.starts_with(super::SERVER_PREFIX));
        for shard in [
            super::SHARD_COUNT,
            super::SHARD_TXN_BEGINS_TOTAL,
            super::SHARD_SINGLE_COMMITS_TOTAL,
            super::SHARD_2PC_COMMITS_TOTAL,
            super::SHARD_2PC_ABORTS_TOTAL,
            super::SHARD_2PC_PREPARES_TOTAL,
            super::SHARD_2PC_IN_DOUBT_RESOLVED_TOTAL,
            super::SHARD_SCATTER_OPS_TOTAL,
            super::SHARD_GATHER_MERGES_TOTAL,
        ] {
            assert!(shard.starts_with(super::SHARD_PREFIX), "{shard}");
        }
        for coord in [
            super::COORD_SHARDS,
            super::COORD_TXN_BEGINS_TOTAL,
            super::COORD_SINGLE_COMMITS_TOTAL,
            super::COORD_2PC_COMMITS_TOTAL,
            super::COORD_2PC_ABORTS_TOTAL,
            super::COORD_FRAG_READS_TOTAL,
            super::COORD_RESOLVES_TOTAL,
            super::COORD_DECISIONS_REPLAYED_TOTAL,
        ] {
            assert!(coord.starts_with(super::COORD_PREFIX), "{coord}");
        }
    }
}
