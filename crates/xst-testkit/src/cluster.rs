//! Scripted cross-process cluster workloads for the network-fault sweep.
//!
//! The shape mirrors the storage crash battery in [`crate::crash`]: a
//! deterministic scripted workload, a site-counting dry run, then an
//! exhaustive sweep injecting one fault per numbered site and asserting
//! the cluster's standing contract after recovery:
//!
//! * **acknowledged ⇒ recoverable** — every transaction whose commit
//!   returned `Ok` is present in full on the recovered cluster;
//! * **unacknowledged ⇒ atomically absent** — a transaction that never
//!   got its `Ok` leaves no partial residue on any shard;
//! * **never split-brain** — both are checked per shard fragment, so a
//!   transaction can never be half-applied across the partition.
//!
//! The workload here is intentionally small (every commit is a genuine
//! multi-shard 2PC round) because the sweep multiplies it by every
//! message site × every fault kind.

use crate::netfault::{NetFaultKind, NetFaultPlan, ProxyGroup};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use xst_client::coord::{CoordError, Coordinator};
use xst_core::ops::gather;
use xst_core::{ExtendedSet, SetBuilder, Value};
use xst_server::{member_schema, records_identity_to_set, ServedEngine, Server, ServerConfig};
use xst_storage::{shard_of, Record, Storage, Wal};

/// Shard processes in the scripted cluster.
pub const CLUSTER_SHARDS: usize = 2;
/// The one table the workload writes.
pub const CLUSTER_TABLE: &str = "w";
/// Transactions the scripted workload commits (each multi-shard).
pub const CLUSTER_TXNS: usize = 2;
/// Per-request deadline for every coordinator↔shard round-trip. Small,
/// because Hold faults cost exactly one deadline per stalled request.
pub const CLUSTER_TIMEOUT: Duration = Duration::from_millis(50);

/// N single-shard server processes (in-process threads over real TCP)
/// plus their engines, so the sweep can recover shards from durable
/// state after a run.
pub struct ShardServers {
    /// The running servers (dropping stops them).
    pub servers: Vec<Server>,
    /// Each server's engine, shared with it.
    pub engines: Vec<Arc<ServedEngine>>,
    /// Direct (unproxied) addresses, in shard order.
    pub addrs: Vec<String>,
}

/// Start `n` fresh single-shard servers on loopback.
pub fn start_shard_servers(n: usize) -> ShardServers {
    let mut servers = Vec::with_capacity(n);
    let mut engines = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let engine = Arc::new(ServedEngine::new());
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
            .expect("start shard server");
        addrs.push(server.addr().to_string());
        servers.push(server);
        engines.push(engine);
    }
    ShardServers {
        servers,
        engines,
        addrs,
    }
}

/// The member record a set member becomes on the wire (the routing
/// key): `[element, scope]`.
fn member_record(element: i64, scope: i64) -> Record {
    Record::new([Value::Int(element), Value::Int(scope)])
}

/// The scripted set transaction `t` writes: exactly one member routed
/// to each of the [`CLUSTER_SHARDS`] shards (found by scanning element
/// values — pure hashing, no randomness), scoped by the transaction
/// number so every transaction's members are disjoint.
pub fn txn_set(t: usize) -> ExtendedSet {
    let scope = t as i64 + 1;
    let mut found: Vec<Option<i64>> = vec![None; CLUSTER_SHARDS];
    let mut missing = CLUSTER_SHARDS;
    let mut candidate = t as i64 * 1000;
    while missing > 0 {
        let shard = shard_of(&member_record(candidate, scope), CLUSTER_SHARDS);
        if found[shard].is_none() {
            found[shard] = Some(candidate);
            missing -= 1;
        }
        candidate += 1;
    }
    let mut b = SetBuilder::new();
    for element in found.into_iter().flatten() {
        b.scoped(Value::Int(element), Value::Int(scope));
    }
    b.build()
}

/// The whole-cluster contents implied by the acknowledged transaction
/// set: the union of every acked transaction's scripted set.
pub fn expected_set(acked: &[usize]) -> ExtendedSet {
    gather(&acked.iter().map(|&t| txn_set(t)).collect::<Vec<_>>())
}

/// Drive the scripted workload through `coord`: [`CLUSTER_TXNS`]
/// begin→put→commit rounds, each writing both shards. Returns the
/// transactions whose commit was **acknowledged** (returned `Ok`), and
/// the first error if a fault cut the run short.
pub fn drive_cluster_workload(coord: &mut Coordinator) -> (Vec<usize>, Option<CoordError>) {
    let mut acked = Vec::new();
    for t in 0..CLUSTER_TXNS {
        if let Err(e) = coord.begin() {
            return (acked, Some(e));
        }
        if let Err(e) = coord.put(CLUSTER_TABLE, &txn_set(t)) {
            return (acked, Some(e));
        }
        match coord.commit() {
            Ok(_) => acked.push(t),
            Err(e) => return (acked, Some(e)),
        }
    }
    (acked, None)
}

/// Count the workload's message sites: run it once through counting
/// proxies with no injection. Also asserts the clean run acknowledges
/// every transaction — the sweep below would be vacuous otherwise.
pub fn count_message_sites() -> u64 {
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let plan = NetFaultPlan::count_only();
    let proxies = ProxyGroup::start(&cluster.addrs, &plan).expect("start proxies");
    let mut coord = Coordinator::connect(proxies.addrs(), Some(CLUSTER_TIMEOUT))
        .expect("connect coordinator through counting proxies");
    let (acked, err) = drive_cluster_workload(&mut coord);
    assert!(err.is_none(), "clean run must not fail: {err:?}");
    assert_eq!(
        acked.len(),
        CLUSTER_TXNS,
        "clean run must acknowledge every transaction"
    );
    let sites = plan.sites_seen();
    assert!(sites > 0, "the workload must cross the wire");
    sites
}

/// The durable residue of one run, for post-fault verification.
pub struct RunOutcome {
    /// Transactions whose commit round-trip was acknowledged.
    pub acked: Vec<usize>,
    /// The fault-induced error, if the run was cut short.
    pub error: Option<CoordError>,
    /// The coordinator's durable devices (decision log), if the
    /// coordinator got far enough to exist.
    pub devices: Option<(Storage, Wal)>,
    /// The shard servers, still running, with their engines.
    pub cluster: ShardServers,
}

/// One faulted run: fresh servers, fresh proxies with `kind` planned at
/// message `site`, fresh coordinator, scripted workload. The servers
/// (and all durable state) survive into the returned outcome; the
/// coordinator and proxies do not — exactly a coordinator crash with
/// the network gone.
pub fn run_with_fault(site: u64, kind: NetFaultKind) -> RunOutcome {
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let plan = NetFaultPlan::at_site(site, kind);
    let proxies = ProxyGroup::start(&cluster.addrs, &plan).expect("start proxies");
    let (acked, error, devices) = match Coordinator::connect(proxies.addrs(), Some(CLUSTER_TIMEOUT))
    {
        Ok(mut coord) => {
            let devices = coord.devices();
            let (acked, error) = drive_cluster_workload(&mut coord);
            (acked, error, Some(devices))
        }
        Err(e) => (Vec::new(), Some(e), None),
    };
    drop(proxies); // severs every surviving proxied connection
    RunOutcome {
        acked,
        error,
        devices,
        cluster,
    }
}

/// Verify the standing contract on a finished run, in two layers:
///
/// 1. **Wire resolve**: restart "the coordinator node" over the same
///    durable devices against the still-running servers —
///    [`Coordinator::recover`] replays the decision log and delivers a
///    Resolve round — then read the table through the recovered
///    coordinator and compare against the acked expectation.
/// 2. **Shard restart**: recover every shard engine from durable state
///    alone (with the replayed committed set resolving in-doubt
///    prepares), re-gather the fragments, and compare again — also
///    asserting every member sits on the shard its hash routes to.
pub fn verify_recovery(outcome: RunOutcome) {
    let expected = expected_set(&outcome.acked);
    let direct = outcome.cluster.addrs.clone();

    // Layer 1: wire resolve against live servers.
    let committed: BTreeSet<u64> = match outcome.devices {
        Some((storage, wal)) => {
            let mut coord = Coordinator::recover(&direct, storage, wal, Some(CLUSTER_TIMEOUT))
                .expect("coordinator recovery over live shards");
            let got = match coord.get(CLUSTER_TABLE) {
                Ok(set) => set,
                // No shard knows the table: nothing was ever written.
                Err(_) if outcome.acked.is_empty() => ExtendedSet::empty(),
                Err(e) => panic!("cluster read after recovery failed: {e}"),
            };
            assert_eq!(
                got, expected,
                "wire-recovered cluster must hold exactly the acked transactions \
                 (acked {:?})",
                outcome.acked
            );
            coord.committed_gtxns().into_iter().collect()
        }
        None => BTreeSet::new(),
    };

    // Layer 2: every shard restarts from durable state.
    drop(outcome.cluster.servers);
    let catalog = [(CLUSTER_TABLE, member_schema())];
    let mut fragments = Vec::with_capacity(CLUSTER_SHARDS);
    for (i, engine) in outcome.cluster.engines.iter().enumerate() {
        let recovered = engine
            .recover_with_decisions(&catalog, &committed)
            .expect("shard recovery");
        let frag = match recovered.latest_identity(CLUSTER_TABLE) {
            Ok(identity) => records_identity_to_set(&identity).expect("fragment identity decodes"),
            Err(_) => ExtendedSet::empty(),
        };
        for m in frag.members() {
            let rec = Record::new([m.element.clone(), m.scope.clone()]);
            assert_eq!(
                shard_of(&rec, CLUSTER_SHARDS),
                i,
                "member {m:?} recovered on shard {i} but routes elsewhere"
            );
        }
        fragments.push(frag);
    }
    let restarted = gather(&fragments);
    assert_eq!(
        restarted, expected,
        "restarted shards must hold exactly the acked transactions (acked {:?})",
        outcome.acked
    );
}

/// The full deterministic sweep for one fault kind: inject `kind` at
/// every message site of the scripted workload and verify recovery
/// after each. `sites` comes from [`count_message_sites`]. Returns how
/// many runs actually saw their fault fire (callers assert it is the
/// whole range — otherwise the sweep went vacuous).
pub fn sweep_fault_kind(sites: u64, kind: NetFaultKind) -> u64 {
    let mut fired = 0;
    for site in 0..sites {
        let cluster = start_shard_servers(CLUSTER_SHARDS);
        let plan = NetFaultPlan::at_site(site, kind);
        let proxies = ProxyGroup::start(&cluster.addrs, &plan).expect("start proxies");
        let (acked, error, devices) =
            match Coordinator::connect(proxies.addrs(), Some(CLUSTER_TIMEOUT)) {
                Ok(mut coord) => {
                    let devices = coord.devices();
                    let (acked, error) = drive_cluster_workload(&mut coord);
                    (acked, error, Some(devices))
                }
                Err(e) => (Vec::new(), Some(e), None),
            };
        if plan.fired() {
            fired += 1;
        } else {
            assert!(
                error.is_none() && acked.len() == CLUSTER_TXNS,
                "site {site}/{kind:?}: fault never fired yet the run failed: {error:?}"
            );
        }
        drop(proxies);
        verify_recovery(RunOutcome {
            acked,
            error,
            devices,
            cluster,
        });
    }
    fired
}
