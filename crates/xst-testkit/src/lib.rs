//! Shared test infrastructure for the paper-reproduction suite:
//! proptest strategies generating random XST values, sets, relations and
//! processes, plus the paper's recurring fixtures.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use xst_core::{ExtendedSet, Member, Process, Scope, Value};

/// Strategy for atoms from a deliberately small universe so random sets
/// collide often (collisions are where set semantics gets interesting).
pub fn arb_atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..6).prop_map(Value::Int),
        prop::sample::select(vec!["a", "b", "c", "x", "y"]).prop_map(Value::sym),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Strategy for values nested up to `depth` levels of sets.
pub fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        arb_atom().boxed()
    } else {
        prop_oneof![
            3 => arb_atom(),
            1 => arb_set(depth - 1).prop_map(Value::Set),
        ]
        .boxed()
    }
}

/// Strategy for extended sets with members nested up to `depth`.
pub fn arb_set(depth: u32) -> BoxedStrategy<ExtendedSet> {
    let scope = prop_oneof![
        2 => Just(Value::classical_scope()),
        2 => (1i64..4).prop_map(Value::Int),
        1 => arb_value(depth.saturating_sub(1)),
    ];
    prop::collection::vec((arb_value(depth), scope), 0..5)
        .prop_map(|pairs| {
            ExtendedSet::from_members(pairs.into_iter().map(|(e, s)| Member::new(e, s)).collect())
        })
        .boxed()
}

/// Strategy for a "wide" atom-only classical set of up to `n` members.
pub fn arb_classical(n: usize) -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec(arb_atom(), 0..n).prop_map(ExtendedSet::classical)
}

/// Strategy for sets of classical pairs (CST-style relations).
pub fn arb_pair_relation() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec((arb_atom(), arb_atom()), 0..8).prop_map(|pairs| {
        ExtendedSet::classical(
            pairs
                .into_iter()
                .map(|(a, b)| Value::Set(ExtendedSet::pair(a, b))),
        )
    })
}

/// Strategy for pair-relation processes `f_(⟨⟨1⟩,⟨2⟩⟩)`.
pub fn arb_pair_process() -> impl Strategy<Value = Process> {
    arb_pair_relation().prop_map(Process::pairs)
}

/// Strategy for *functional* pair relations (each first component once).
pub fn arb_function_relation() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::btree_map(arb_atom(), arb_atom(), 0..8).prop_map(|map| {
        ExtendedSet::classical(
            map.into_iter()
                .map(|(a, b)| Value::Set(ExtendedSet::pair(a, b))),
        )
    })
}

/// Strategy for singleton inputs `{⟨x⟩}` from the shared atom universe.
pub fn arb_singleton_input() -> impl Strategy<Value = ExtendedSet> {
    arb_atom().prop_map(|v| ExtendedSet::classical([Value::Set(ExtendedSet::tuple([v]))]))
}

/// The paper's Example 8.1 carrier with its member scopes.
pub fn example_8_1() -> (ExtendedSet, Scope, Scope) {
    let f = ExtendedSet::from_pairs([
        (
            Value::Set(ExtendedSet::pair("a", "x")),
            Value::Set(ExtendedSet::pair("A", "Z")),
        ),
        (
            Value::Set(ExtendedSet::pair("b", "y")),
            Value::Set(ExtendedSet::pair("B", "Y")),
        ),
        (
            Value::Set(ExtendedSet::pair("c", "x")),
            Value::Set(ExtendedSet::pair("C", "Z")),
        ),
    ]);
    (f, Scope::pairs(), Scope::pairs_inverse())
}

/// The Appendix B carrier `{⟨a,a,a,b,b⟩, ⟨b,b,a,a,b⟩}` with σ and ω.
pub fn appendix_b() -> (ExtendedSet, Scope, Scope) {
    let f = ExtendedSet::classical([
        Value::Set(ExtendedSet::tuple(["a", "a", "a", "b", "b"])),
        Value::Set(ExtendedSet::tuple(["b", "b", "a", "a", "b"])),
    ]);
    let sigma = Scope::pairs();
    let omega = Scope::new(
        ExtendedSet::tuple([1i64]),
        ExtendedSet::tuple([1i64, 3, 4, 5, 2]),
    );
    (f, sigma, omega)
}

/// Singleton input `{⟨x⟩}` for a named atom.
pub fn singleton(x: &str) -> ExtendedSet {
    ExtendedSet::classical([Value::Set(ExtendedSet::tuple([x]))])
}
