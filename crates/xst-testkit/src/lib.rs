//! Shared test infrastructure for the paper-reproduction suite:
//! proptest strategies generating random XST values, sets, relations and
//! processes, plus the paper's recurring fixtures.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod netfault;
pub mod sched;

use proptest::prelude::*;
use xst_core::{ExtendedSet, Member, Process, Scope, Value};

/// Strategy for atoms from a deliberately small universe so random sets
/// collide often (collisions are where set semantics gets interesting).
pub fn arb_atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..6).prop_map(Value::Int),
        prop::sample::select(vec!["a", "b", "c", "x", "y"]).prop_map(Value::sym),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Strategy for atoms that stress the display↔parse corners the small
/// [`arb_atom`] universe never reaches: strings exercising every escape
/// the grammar supports (`\"`, `\\`, `\n`, `\t`) plus grammar-significant
/// characters *inside* quotes (`{`, `^`, `,`, `∅`), byte literals, and
/// floats that print with a kept fraction. Used by the roundtrip property
/// suite.
pub fn arb_tricky_atom() -> impl Strategy<Value = Value> {
    let string_char = prop::sample::select(vec![
        'a', 'z', 'A', '0', ' ', '"', '\\', '\n', '\t', '\'', '{', '}', '^', ',', '⟨', '∅',
    ]);
    prop_oneof![
        prop::collection::vec(string_char, 0..8)
            .prop_map(|cs| Value::str(cs.into_iter().collect::<String>())),
        prop::collection::vec(any::<u8>(), 0..6).prop_map(Value::bytes),
        prop::sample::select(vec![0.0f64, 1.5, -2.25, 3.0, 0.125, -10.0]).prop_map(Value::float),
        arb_atom(),
    ]
}

/// Strategy for sets over the tricky-atom universe, nested up to `depth`,
/// including tuples and the empty set — the full surface the
/// display↔parse roundtrip must cover.
pub fn arb_tricky_set(depth: u32) -> BoxedStrategy<ExtendedSet> {
    let value = if depth == 0 {
        arb_tricky_atom().boxed()
    } else {
        prop_oneof![
            3 => arb_tricky_atom(),
            1 => arb_tricky_set(depth - 1).prop_map(Value::Set),
            1 => prop::collection::vec(arb_tricky_atom(), 0..3)
                .prop_map(|vs| Value::Set(ExtendedSet::tuple(vs))),
        ]
        .boxed()
    };
    let scope = prop_oneof![
        2 => Just(Value::classical_scope()),
        1 => (1i64..4).prop_map(Value::Int),
        1 => arb_tricky_atom(),
    ];
    prop_oneof![
        1 => Just(ExtendedSet::empty()),
        6 => prop::collection::vec((value, scope), 0..4).prop_map(|pairs| {
            ExtendedSet::from_members(pairs.into_iter().map(|(e, s)| Member::new(e, s)).collect())
        }),
    ]
    .boxed()
}

/// Strategy for values nested up to `depth` levels of sets.
pub fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        arb_atom().boxed()
    } else {
        prop_oneof![
            3 => arb_atom(),
            1 => arb_set(depth - 1).prop_map(Value::Set),
        ]
        .boxed()
    }
}

/// Strategy for extended sets with members nested up to `depth`.
pub fn arb_set(depth: u32) -> BoxedStrategy<ExtendedSet> {
    let scope = prop_oneof![
        2 => Just(Value::classical_scope()),
        2 => (1i64..4).prop_map(Value::Int),
        1 => arb_value(depth.saturating_sub(1)),
    ];
    prop::collection::vec((arb_value(depth), scope), 0..5)
        .prop_map(|pairs| {
            ExtendedSet::from_members(pairs.into_iter().map(|(e, s)| Member::new(e, s)).collect())
        })
        .boxed()
}

/// Strategy for a "wide" atom-only classical set of up to `n` members.
pub fn arb_classical(n: usize) -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec(arb_atom(), 0..n).prop_map(ExtendedSet::classical)
}

/// Strategy for sets of classical pairs (CST-style relations).
pub fn arb_pair_relation() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec((arb_atom(), arb_atom()), 0..8).prop_map(|pairs| {
        ExtendedSet::classical(
            pairs
                .into_iter()
                .map(|(a, b)| Value::Set(ExtendedSet::pair(a, b))),
        )
    })
}

/// Strategy for pair-relation processes `f_(⟨⟨1⟩,⟨2⟩⟩)`.
pub fn arb_pair_process() -> impl Strategy<Value = Process> {
    arb_pair_relation().prop_map(Process::pairs)
}

/// Strategy for *functional* pair relations (each first component once).
pub fn arb_function_relation() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::btree_map(arb_atom(), arb_atom(), 0..8).prop_map(|map| {
        ExtendedSet::classical(
            map.into_iter()
                .map(|(a, b)| Value::Set(ExtendedSet::pair(a, b))),
        )
    })
}

/// Strategy for singleton inputs `{⟨x⟩}` from the shared atom universe.
pub fn arb_singleton_input() -> impl Strategy<Value = ExtendedSet> {
    arb_atom().prop_map(|v| ExtendedSet::classical([Value::Set(ExtendedSet::tuple([v]))]))
}

/// The paper's Example 8.1 carrier with its member scopes.
pub fn example_8_1() -> (ExtendedSet, Scope, Scope) {
    let f = ExtendedSet::from_pairs([
        (
            Value::Set(ExtendedSet::pair("a", "x")),
            Value::Set(ExtendedSet::pair("A", "Z")),
        ),
        (
            Value::Set(ExtendedSet::pair("b", "y")),
            Value::Set(ExtendedSet::pair("B", "Y")),
        ),
        (
            Value::Set(ExtendedSet::pair("c", "x")),
            Value::Set(ExtendedSet::pair("C", "Z")),
        ),
    ]);
    (f, Scope::pairs(), Scope::pairs_inverse())
}

/// The Appendix B carrier `{⟨a,a,a,b,b⟩, ⟨b,b,a,a,b⟩}` with σ and ω.
pub fn appendix_b() -> (ExtendedSet, Scope, Scope) {
    let f = ExtendedSet::classical([
        Value::Set(ExtendedSet::tuple(["a", "a", "a", "b", "b"])),
        Value::Set(ExtendedSet::tuple(["b", "b", "a", "a", "b"])),
    ]);
    let sigma = Scope::pairs();
    let omega = Scope::new(
        ExtendedSet::tuple([1i64]),
        ExtendedSet::tuple([1i64, 3, 4, 5, 2]),
    );
    (f, sigma, omega)
}

/// Singleton input `{⟨x⟩}` for a named atom.
pub fn singleton(x: &str) -> ExtendedSet {
    ExtendedSet::classical([Value::Set(ExtendedSet::tuple([x]))])
}

/// Exhaustive crash-recovery harness: a scripted append/checkpoint/scan
/// workload driven against a fault-injected substrate, plus the sweep that
/// enumerates *every* injectable fault site, crashes at each one, recovers,
/// and asserts the durability contract — acknowledged ⇒ recoverable,
/// unacknowledged ⇒ atomically absent — at all of them.
pub mod crash {
    use xst_core::Value;
    use xst_storage::{
        BufferPool, FaultKind, FaultPlan, FaultSchedule, LoggedTable, Record, RetryPolicy, Schema,
        Storage, Wal,
    };

    /// Batch sizes of the scripted workload, in order.
    pub const BATCHES: &[usize] = &[3, 1, 4, 2, 5, 3, 2];
    /// A checkpoint runs after every `CHECKPOINT_EVERY`-th batch.
    pub const CHECKPOINT_EVERY: usize = 2;

    /// The workload's schema.
    pub fn schema() -> Schema {
        Schema::new(["id", "pad"])
    }

    /// The `i`-th workload record. The pad pushes encoded size to ~400
    /// bytes so the workload overflows tail pages and exercises heap-flush
    /// fault sites, not just WAL flushes.
    pub fn rec(i: i64) -> Record {
        Record::new([
            Value::Int(i),
            Value::str(format!("{i}:{}", "x".repeat(370))),
        ])
    }

    /// Everything a crashed (or completed) workload run leaves behind.
    pub struct WorkloadRun {
        /// Records whose batch was acknowledged (in acknowledgment order).
        pub acked: Vec<Record>,
        /// Display form of the first surfaced error, if the run crashed.
        pub crashed: Option<String>,
        /// The surviving disk.
        pub storage: Storage,
        /// The surviving log.
        pub wal: Wal,
    }

    /// Drive the scripted workload — batched appends with interleaved
    /// checkpoints, then a full scan — against a substrate with `plan`
    /// installed (on both the disk and the log, sharing one site counter)
    /// under `retry`. The first surfaced error "crashes" the run; a batch
    /// counts as acknowledged iff `append_batch` returned `Ok`.
    pub fn drive_workload(plan: Option<&FaultPlan>, retry: RetryPolicy) -> WorkloadRun {
        let storage = Storage::new();
        let wal = Wal::new();
        if let Some(p) = plan {
            storage.install_faults(p);
            wal.install_faults(p);
        }
        let mut t = LoggedTable::create(&storage, schema(), wal.clone()).with_retry_policy(retry);
        let mut acked = Vec::new();
        let mut crashed = None;
        let mut next = 0i64;
        'work: for (bi, &size) in BATCHES.iter().enumerate() {
            let batch: Vec<Record> = (next..next + size as i64).map(rec).collect();
            next += size as i64;
            match t.append_batch(&batch) {
                Ok(_) => acked.extend(batch),
                Err(e) => {
                    crashed = Some(e.to_string());
                    break 'work;
                }
            }
            // A post-acknowledge heap failure wedges the handle: the batch
            // IS acked (it is durable in the log) but the process can only
            // stop and recover.
            if t.is_wedged() {
                crashed = Some("wedged: acknowledged records not applied".into());
                break 'work;
            }
            if (bi + 1) % CHECKPOINT_EVERY == 0 {
                if let Err(e) = t.checkpoint() {
                    crashed = Some(e.to_string());
                    break 'work;
                }
            }
        }
        if crashed.is_none() {
            // Read phase: exercises Read fault sites through the pool.
            let pool = BufferPool::new(storage.clone(), 4).with_retry_policy(retry);
            match t.table.file.read_all(&pool) {
                Ok(rows) => assert_eq!(rows, acked, "live scan must see exactly the acked set"),
                Err(e) => crashed = Some(e.to_string()),
            }
        }
        WorkloadRun {
            acked,
            crashed,
            storage,
            wal,
        }
    }

    /// Crash the run's process (staged log bytes are lost), clear fault
    /// injection (the recovering process has a working disk), recover, and
    /// return the recovered rows.
    pub fn recover_and_rows(run: &WorkloadRun) -> Vec<Record> {
        run.storage.clear_faults();
        run.wal.clear_faults();
        run.wal.drop_staged();
        let recovered = LoggedTable::recover(&run.storage, schema(), run.wal.clone())
            .expect("recovery must succeed on a fault-free substrate");
        let pool = BufferPool::new(run.storage.clone(), 8);
        recovered
            .table
            .file
            .read_all(&pool)
            .expect("recovered table must scan")
    }

    /// Run the workload under a counting plan (never fires) to learn how
    /// many injectable fault sites it has.
    pub fn count_sites() -> u64 {
        let counting = FaultPlan::counting();
        let clean = drive_workload(Some(&counting), RetryPolicy::none());
        assert!(
            clean.crashed.is_none(),
            "counting plan must not crash: {:?}",
            clean.crashed
        );
        assert_eq!(clean.acked.len(), BATCHES.iter().sum::<usize>());
        counting.sites_seen()
    }

    /// The tentpole check: for every enumerable fault site, crash there
    /// with `kind` (no retries, so the fault always surfaces), recover,
    /// and assert the recovered rows are *exactly* the acknowledged
    /// prefix. Returns the number of sites swept.
    pub fn exhaustive_crash_sweep(kind: FaultKind) -> u64 {
        let sites = count_sites();
        assert!(sites > 0, "workload has injectable sites");
        for site in 0..sites {
            let plan = FaultPlan::new(FaultSchedule::AtSite(site), kind);
            let run = drive_workload(Some(&plan), RetryPolicy::none());
            assert_eq!(plan.injected_count(), 1, "site {site} must fire");
            let rows = recover_and_rows(&run);
            assert_eq!(
                rows, run.acked,
                "site {site}/{sites}, kind {kind}: recovered rows must equal \
                 the acknowledged prefix (crash: {:?})",
                run.crashed
            );
        }
        sites
    }

    // -----------------------------------------------------------------
    // The transactional workload: the same discipline one layer up.
    // -----------------------------------------------------------------

    use std::collections::BTreeSet;
    use xst_storage::TxnManager;

    /// Tables of the transactional crash workload.
    pub const TXN_TABLES: [&str; 2] = ["t", "u"];
    /// Transactions the scripted transactional workload commits.
    pub const TXN_COMMITS: usize = 10;

    /// Schema of the transactional workload's tables.
    pub fn txn_schema() -> Schema {
        Schema::new(["k", "pad"])
    }

    /// The transactional workload's `i`-th row (padded so op-log batches
    /// span heap pages and exercise heap-flush fault sites).
    pub fn txn_rec(i: i64) -> Record {
        Record::new([
            Value::Int(i),
            Value::str(format!("{i}:{}", "y".repeat(370))),
        ])
    }

    /// What a crashed (or completed) transactional run leaves behind.
    pub struct TxnRun {
        /// Expected per-table contents from *acknowledged* commits only.
        pub acked: Vec<(String, BTreeSet<Record>)>,
        /// Display form of the first surfaced error, if the run crashed.
        pub crashed: Option<String>,
        /// The surviving disk.
        pub storage: Storage,
        /// The surviving log.
        pub wal: Wal,
    }

    /// Drive a scripted transactional workload — [`TXN_COMMITS`]
    /// multi-table transactions (inserts plus periodic deletes of earlier
    /// rows), committed one after another, with one transaction left
    /// in-flight at the end — against a substrate with `plan` installed
    /// under `retry`. A transaction counts as acknowledged iff its
    /// `commit()` returned `Ok`; the model folds exactly the acknowledged
    /// ops.
    pub fn drive_txn_workload(plan: Option<&FaultPlan>, retry: RetryPolicy) -> TxnRun {
        let storage = Storage::new();
        let wal = Wal::new();
        if let Some(p) = plan {
            storage.install_faults(p);
            wal.install_faults(p);
        }
        let mgr = TxnManager::new(&storage, wal.clone()).with_retry_policy(retry);
        for t in TXN_TABLES {
            mgr.create_table(t, txn_schema())
                .expect("catalog is in-memory");
        }
        let mut model: Vec<(String, BTreeSet<Record>)> = TXN_TABLES
            .iter()
            .map(|t| (t.to_string(), BTreeSet::new()))
            .collect();
        let mut crashed = None;
        for i in 0..TXN_COMMITS as i64 {
            let mut txn = mgr.begin();
            let mut staged: Vec<(usize, Record, bool)> = Vec::new(); // (table idx, rec, is_insert)
            let stage = |txn: &mut xst_storage::Txn,
                         staged: &mut Vec<(usize, Record, bool)>,
                         ti: usize,
                         rec: Record,
                         insert: bool| {
                let r = if insert {
                    txn.insert(TXN_TABLES[ti], rec.clone())
                } else {
                    txn.delete(TXN_TABLES[ti], rec.clone())
                };
                r.expect("buffered writes do no I/O");
                staged.push((ti, rec, insert));
            };
            stage(&mut txn, &mut staged, 0, txn_rec(i), true);
            stage(&mut txn, &mut staged, 1, txn_rec(100 + i), true);
            if i % 3 == 0 && i > 0 {
                stage(&mut txn, &mut staged, 0, txn_rec(i - 1), false);
            }
            match txn.commit() {
                Ok(_) => {
                    for (ti, rec, insert) in staged {
                        if insert {
                            model[ti].1.insert(rec);
                        } else {
                            model[ti].1.remove(&rec);
                        }
                    }
                }
                Err(e) => {
                    crashed = Some(e.to_string());
                    break;
                }
            }
        }
        if crashed.is_none() {
            // The in-flight transaction: buffered writes, never committed.
            // It must vanish atomically at the crash.
            let mut doomed = mgr.begin();
            doomed
                .insert(TXN_TABLES[0], txn_rec(999))
                .expect("buffered writes do no I/O");
            std::mem::forget(doomed);
        }
        TxnRun {
            acked: model,
            crashed,
            storage,
            wal,
        }
    }

    /// Crash the transactional run's process, clear fault injection,
    /// recover through [`TxnManager::recover`], and return the recovered
    /// per-table rows (as sets, matching [`TxnRun::acked`]).
    pub fn recover_txn_tables(run: &TxnRun) -> Vec<(String, BTreeSet<Record>)> {
        run.storage.clear_faults();
        run.wal.clear_faults();
        run.wal.drop_staged();
        let catalog: Vec<(&str, Schema)> = TXN_TABLES.iter().map(|t| (*t, txn_schema())).collect();
        let recovered = TxnManager::recover(&run.storage, run.wal.clone(), Wal::new(), &catalog)
            .expect("txn recovery must succeed on a fault-free substrate");
        TXN_TABLES
            .iter()
            .map(|t| {
                let rows = recovered
                    .begin()
                    .scan(t)
                    .expect("recovered table must scan");
                (t.to_string(), rows.into_iter().collect())
            })
            .collect()
    }

    /// Injectable-site count of the transactional workload.
    pub fn count_txn_sites() -> u64 {
        let counting = FaultPlan::counting();
        let clean = drive_txn_workload(Some(&counting), RetryPolicy::none());
        assert!(
            clean.crashed.is_none(),
            "counting plan must not crash: {:?}",
            clean.crashed
        );
        counting.sites_seen()
    }

    /// The fault-compose regression: crash a transactional workload at
    /// *every* injectable site with `kind`, recover through the txn
    /// layer, and assert acknowledged commits survive in full while
    /// unacknowledged and in-flight transactions are atomically absent.
    /// Returns the number of sites swept.
    pub fn exhaustive_txn_crash_sweep(kind: FaultKind) -> u64 {
        let sites = count_txn_sites();
        assert!(sites > 0, "txn workload has injectable sites");
        for site in 0..sites {
            let plan = FaultPlan::new(FaultSchedule::AtSite(site), kind);
            let run = drive_txn_workload(Some(&plan), RetryPolicy::none());
            assert_eq!(plan.injected_count(), 1, "site {site} must fire");
            let recovered = recover_txn_tables(&run);
            assert_eq!(
                recovered, run.acked,
                "site {site}/{sites}, kind {kind}: recovered tables must equal \
                 the acknowledged commits (crash: {:?})",
                run.crashed
            );
        }
        sites
    }

    // -----------------------------------------------------------------
    // The sharded workload: the same discipline across a multi-shard
    // deployment, where a crash can land inside any phase of two-phase
    // commit on any shard or on the coordinator.
    // -----------------------------------------------------------------

    use xst_storage::{shard_of, SetEngine, ShardedEngine};

    /// Shards in the sharded crash workload.
    pub const SHARD_COUNT: usize = 3;
    /// Table of the sharded crash workload.
    pub const SHARDED_TABLE: &str = "d";
    /// Distributed transactions the scripted sharded workload commits.
    pub const SHARDED_COMMITS: usize = 6;
    /// Records per multi-shard transaction (spread over the hash so
    /// nearly every commit runs the full prepare/decide/commit round).
    pub const SHARDED_SPREAD: i64 = 4;

    /// What a crashed (or completed) sharded run leaves behind.
    pub struct ShardedRun {
        /// Expected table contents from *acknowledged* commits only.
        pub acked: BTreeSet<Record>,
        /// Display form of the first surfaced error, if the run crashed.
        pub crashed: Option<String>,
        /// The surviving deployment: every shard's devices plus the
        /// coordinator's decision log, exactly as the crash left them.
        pub engine: ShardedEngine,
    }

    /// Drive a scripted distributed workload — [`SHARDED_COMMITS`]
    /// transactions against a [`SHARD_COUNT`]-shard engine, one
    /// single-record transaction first (the one-flush fast path) and
    /// multi-record spreads after (the full 2PC round), with periodic
    /// deletes of earlier rows and one distributed transaction left
    /// in-flight at the end. A transaction counts as acknowledged iff
    /// its `commit()` returned `Ok`.
    pub fn drive_sharded_workload(plan: Option<&FaultPlan>, retry: RetryPolicy) -> ShardedRun {
        let engine = ShardedEngine::with_shards(SHARD_COUNT).with_retry_policy(retry);
        engine
            .create_table(SHARDED_TABLE, txn_schema())
            .expect("catalog is in-memory");
        if let Some(p) = plan {
            engine.install_faults(p);
        }
        let mut model: BTreeSet<Record> = BTreeSet::new();
        let mut crashed = None;
        for i in 0..SHARDED_COMMITS as i64 {
            let mut txn = engine.begin();
            let mut staged: Vec<(Record, bool)> = Vec::new();
            let spread = if i == 0 { 1 } else { SHARDED_SPREAD };
            for k in 0..spread {
                let rec = txn_rec(10 * i + k);
                txn.insert(SHARDED_TABLE, rec.clone())
                    .expect("buffered writes do no I/O");
                staged.push((rec, true));
            }
            if i % 3 == 0 && i > 0 {
                let victim = txn_rec(10 * (i - 1));
                txn.delete(SHARDED_TABLE, victim.clone())
                    .expect("buffered writes do no I/O");
                staged.push((victim, false));
            }
            match txn.commit() {
                Ok(_) => {
                    for (rec, insert) in staged {
                        if insert {
                            model.insert(rec);
                        } else {
                            model.remove(&rec);
                        }
                    }
                }
                Err(e) => {
                    crashed = Some(e.to_string());
                    break;
                }
            }
        }
        if crashed.is_none() {
            // The in-flight distributed transaction: buffered on every
            // shard, prepared nowhere. It must vanish atomically.
            let mut doomed = engine.begin();
            for k in 0..SHARDED_SPREAD {
                doomed
                    .insert(SHARDED_TABLE, txn_rec(990 + k))
                    .expect("buffered writes do no I/O");
            }
            std::mem::forget(doomed);
        }
        ShardedRun {
            acked: model,
            crashed,
            engine,
        }
    }

    /// Crash the sharded run's process, recover the whole deployment
    /// through [`ShardedEngine::recover`] (which resolves in-doubt
    /// prepares from the coordinator's decision log), and return the
    /// recovered table rows. Along the way, assert the scatter
    /// invariant: every recovered record lives on exactly the shard the
    /// hash owns it to, with no duplicates across shards — so a
    /// half-committed distributed transaction cannot hide as a
    /// fragment mismatch.
    pub fn recover_sharded_table(run: &ShardedRun) -> BTreeSet<Record> {
        let recovered = run
            .engine
            .recover()
            .expect("sharded recovery must succeed on a fault-free substrate");
        let mut txn = recovered.begin();
        let frags = txn
            .read_fragments(SHARDED_TABLE)
            .expect("recovered table must read");
        txn.abort();
        let mut rows = BTreeSet::new();
        for (i, frag) in frags.iter().enumerate() {
            for rec in SetEngine::to_records(frag).expect("fragment decodes to records") {
                assert_eq!(
                    shard_of(&rec, SHARD_COUNT),
                    i,
                    "record recovered on a shard that does not own it"
                );
                assert!(rows.insert(rec), "record duplicated across shards");
            }
        }
        rows
    }

    /// Injectable-site count of the sharded workload (every shard's
    /// storage and WAL plus the coordinator's, one shared counter).
    pub fn count_sharded_sites() -> u64 {
        let counting = FaultPlan::counting();
        let clean = drive_sharded_workload(Some(&counting), RetryPolicy::none());
        assert!(
            clean.crashed.is_none(),
            "counting plan must not crash: {:?}",
            clean.crashed
        );
        counting.sites_seen()
    }

    /// The 2PC crash regression: crash the sharded workload at *every*
    /// injectable site with `kind` — inside prepare flushes, the
    /// coordinator's decision flush, local commit markers, and heap
    /// applies, on every shard — recover the deployment, and assert
    /// all-or-nothing across shards: acknowledged distributed commits
    /// survive on every shard they touched, unacknowledged ones leave no
    /// trace on any shard. Returns the number of sites swept.
    pub fn exhaustive_sharded_crash_sweep(kind: FaultKind) -> u64 {
        let sites = count_sharded_sites();
        assert!(sites > 0, "sharded workload has injectable sites");
        for site in 0..sites {
            let plan = FaultPlan::new(FaultSchedule::AtSite(site), kind);
            let run = drive_sharded_workload(Some(&plan), RetryPolicy::none());
            assert_eq!(plan.injected_count(), 1, "site {site} must fire");
            let recovered = recover_sharded_table(&run);
            assert_eq!(
                recovered, run.acked,
                "site {site}/{sites}, kind {kind}: the recovered deployment must \
                 hold exactly the acknowledged distributed commits, atomically \
                 across shards (crash: {:?})",
                run.crashed
            );
        }
        sites
    }
}
