//! Deterministic network-fault injection for the cross-process cluster.
//!
//! A [`ProxyGroup`] sits one frame-forwarding proxy in front of every
//! shard server. Every frame any proxy forwards — in either direction,
//! handshakes included — consumes one **message site** from a counter
//! shared across the whole group. Because the wire coordinator issues
//! strictly sequential round-trips (one outstanding frame across the
//! cluster), the numbering is a total order and a scripted workload
//! consumes an identical site sequence on every run: the network-fault
//! mirror of the storage layer's numbered I/O sites.
//!
//! A [`NetFaultPlan`] names one site and what happens to the message
//! that lands on it:
//!
//! * [`NetFaultKind::DropMessage`] — the frame vanishes; both ends keep
//!   running (a lost datagram). The sender's read deadline expires.
//! * [`NetFaultKind::Hold`] — the frame and **everything after it** on
//!   that direction of that connection stalls forever, without closing
//!   anything: delay-past-timeout, modeled without a clock. The proxy
//!   simply stops pumping that direction; the sockets stay open (held
//!   by the group), so neither end sees EOF — only the deadline fires.
//! * [`NetFaultKind::Sever`] — both directions of that connection are
//!   shut down: a broken TCP session. The peer sees EOF/reset.
//! * [`NetFaultKind::KillAll`] — every connection in the group is
//!   severed at once: the coordinator process dying mid-protocol.
//!
//! Nothing here reads a clock or a random source: the only
//! nondeterminism a fault introduces is *which error* the blocked peer
//! reports (timeout vs. closed), and every harness treats all failure
//! shapes identically.

use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xst_server::wire::{read_frame, write_frame};

/// What happens to the message that lands on the planned site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Discard exactly this message; keep the connection flowing.
    DropMessage,
    /// Stall this direction of this connection forever without closing
    /// it (delay past any timeout, clock-free).
    Hold,
    /// Shut down both directions of this connection.
    Sever,
    /// Shut down every connection in the group (coordinator death).
    KillAll,
}

/// One planned fault at one numbered message site, sharing its site
/// counter with every proxy in a group. Clone freely: clones share the
/// counter.
#[derive(Clone)]
pub struct NetFaultPlan {
    counter: Arc<AtomicU64>,
    target: u64,
    kind: NetFaultKind,
}

impl NetFaultPlan {
    /// A pass-through plan that only counts sites (no injection).
    pub fn count_only() -> NetFaultPlan {
        NetFaultPlan {
            counter: Arc::new(AtomicU64::new(0)),
            target: u64::MAX,
            kind: NetFaultKind::DropMessage,
        }
    }

    /// Inject `kind` on the message that lands on 0-based `site`.
    pub fn at_site(site: u64, kind: NetFaultKind) -> NetFaultPlan {
        NetFaultPlan {
            counter: Arc::new(AtomicU64::new(0)),
            target: site,
            kind,
        }
    }

    /// Messages seen so far across every proxy sharing this plan.
    pub fn sites_seen(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Did the planned site fire (was it reached)?
    pub fn fired(&self) -> bool {
        self.sites_seen() > self.target
    }
}

/// Every live socket in the group, so [`NetFaultKind::KillAll`] and
/// shutdown can sever them all, and so [`NetFaultKind::Hold`] can leave
/// sockets open after their pump thread exits.
type ConnSet = Arc<Mutex<Vec<TcpStream>>>;

fn sever_all(conns: &ConnSet) {
    let Ok(guard) = conns.lock() else { return };
    for s in guard.iter() {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// One frame-forwarding proxy per upstream shard address, all sharing
/// one fault plan and one site counter. Dropping the group severs every
/// connection and stops every accept loop.
pub struct ProxyGroup {
    addrs: Vec<String>,
    conns: ConnSet,
    stop: Arc<AtomicBool>,
    plan: NetFaultPlan,
}

impl ProxyGroup {
    /// Start one proxy in front of each `upstreams` address. Returns
    /// after every listener is bound; `addrs()` yields the proxy-side
    /// addresses in upstream order.
    pub fn start(upstreams: &[String], plan: &NetFaultPlan) -> std::io::Result<ProxyGroup> {
        let conns: ConnSet = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(upstreams.len());
        for upstream in upstreams {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            listener.set_nonblocking(true)?;
            addrs.push(listener.local_addr()?.to_string());
            let upstream = upstream.clone();
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            let plan = plan.clone();
            std::thread::spawn(move || accept_loop(&listener, &upstream, &conns, &stop, &plan));
        }
        Ok(ProxyGroup {
            addrs,
            conns,
            stop,
            plan: plan.clone(),
        })
    }

    /// The proxy-side addresses, in upstream order — what the
    /// coordinator dials instead of the real servers.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The group's shared fault plan (site counter included).
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Sever every connection now (without waiting for drop).
    pub fn sever_all(&self) {
        sever_all(&self.conns);
    }
}

impl Drop for ProxyGroup {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        sever_all(&self.conns);
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    conns: &ConnSet,
    stop: &Arc<AtomicBool>,
    plan: &NetFaultPlan,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    let _ = client.shutdown(Shutdown::Both);
                    let _ = server.shutdown(Shutdown::Both);
                    continue;
                };
                if let Ok(mut guard) = conns.lock() {
                    if let (Ok(ch), Ok(sh)) = (client.try_clone(), server.try_clone()) {
                        guard.push(ch);
                        guard.push(sh);
                    }
                }
                let plan_fwd = plan.clone();
                let plan_rev = plan.clone();
                let conns_fwd = Arc::clone(conns);
                let conns_rev = Arc::clone(conns);
                std::thread::spawn(move || pump(client, server, &plan_fwd, &conns_fwd));
                std::thread::spawn(move || pump(s2, c2, &plan_rev, &conns_rev));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Forward frames `from` → `to`, numbering each against the shared
/// site counter and injecting the planned fault when its site lands
/// here. Exits on EOF/error (severing the pair so the peer notices) or
/// when the fault says so.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: &NetFaultPlan, conns: &ConnSet) {
    loop {
        let payload = match read_frame(&mut from) {
            Ok(p) => p,
            Err(_) => {
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        };
        let site = plan.counter.fetch_add(1, Ordering::SeqCst);
        if site == plan.target {
            match plan.kind {
                NetFaultKind::DropMessage => continue,
                // Exit without closing anything: the clones held by the
                // group keep both sockets open, so the stall looks like
                // unbounded delay, not disconnection.
                NetFaultKind::Hold => return,
                NetFaultKind::Sever => {
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
                NetFaultKind::KillAll => {
                    sever_all(conns);
                    return;
                }
            }
        }
        if write_frame(&mut to, &payload).is_err() {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
    }
}

impl std::fmt::Debug for NetFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetFaultPlan")
            .field("target", &self.target)
            .field("kind", &self.kind)
            .field("seen", &self.sites_seen())
            .finish()
    }
}
