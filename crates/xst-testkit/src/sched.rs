//! Deterministic interleaving harness for the transaction layer.
//!
//! A concurrency bug is a *schedule* bug: some interleaving of steps whose
//! outcome no serial execution can produce. This module makes schedules
//! first-class so the test suite can enumerate them:
//!
//! * a **script** is the program of one transaction — a list of [`Op`]s
//!   followed by an implicit commit step;
//! * a **schedule** is a sequence of transaction indices saying whose step
//!   runs next (a cooperative scheduler — the transactions never race,
//!   every run is exactly reproducible);
//! * [`enumerate_schedules`] yields *every* interleaving of the scripts'
//!   steps (exhaustive for small cases), [`random_schedule`] a
//!   seed-replayable one for large cases;
//! * [`run_schedule`] executes one schedule against a fresh
//!   [`TxnManager`] and records which transactions committed, what every
//!   `Read` observed, and the final table contents;
//! * [`find_serial_equivalent`] is the **sequential oracle**: it replays
//!   the committed scripts serially in every permutation and reports an
//!   order producing the same final state, if one exists. Snapshot
//!   isolation with first-committer-wins must make *every* schedule of the
//!   workloads used here final-state serializable; a schedule with no
//!   serial witness is a bug (and the deliberately-broken conflict mode is
//!   required to produce one — that is the harness's own guard test).
//!
//! [`Op::Increment`] is the load-bearing operation: a read-modify-write
//! whose lost update is visible in the final state, so the oracle can tell
//! correct isolation from broken isolation by looking at rows alone.

use xst_core::Value;
use xst_storage::{Record, Schema, Storage, Txn, TxnManager, Wal};

/// The single table every scheduled workload runs against.
pub const TABLE: &str = "t";

/// Schema of the scheduled workload's table.
pub fn kv_schema() -> Schema {
    Schema::new(["k", "v"])
}

/// The workload row `⟨k, v⟩`.
pub fn row(k: i64, v: i64) -> Record {
    Record::new([Value::Int(k), Value::Int(v)])
}

/// The sentinel value marking a key as logically absent. Every key a
/// workload mentions is seeded with a tombstone row before the schedule
/// runs, and `Delete` writes a tombstone rather than leaving nothing:
/// the table holds **exactly one materialized row per key at all times**.
///
/// This is the harness's answer to the phantom problem. The manager's
/// conflict detection is record-level, so a key with *no* row has no
/// conflict footprint — two transactions writing an absent key from
/// equal snapshots could slip past first-committer-wins with disjoint
/// records and produce SI's classic write-skew anomaly (which the
/// sequential oracle would then, correctly, flag). With a row always
/// present, every writing op deletes its predecessor row, so any two
/// concurrent writers of a key ww-conflict — the Fekete condition under
/// which snapshot isolation IS serializable. Tombstones are stripped
/// from recorded reads and final rows.
pub const TOMBSTONE: i64 = -1;

/// One step of a transaction's script.
///
/// Every writing op replaces the key's current row (see [`TOMBSTONE`]
/// for why), so its record-level write set covers its read footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Set key `k` to `⟨k, k·10⟩`, replacing its current row.
    Insert(i64),
    /// Logically delete key `k`: replace its current row with a
    /// tombstone.
    Delete(i64),
    /// Read-modify-write: read the visible value at `k` (0 if absent),
    /// replace the row with `⟨k, v+1⟩`. Two concurrent increments that
    /// both commit would lose an update — exactly what
    /// first-committer-wins must prevent.
    Increment(i64),
    /// Observe the transaction's current view (recorded in the outcome).
    Read,
}

impl Op {
    /// The key this op writes, if it writes one.
    pub fn key(&self) -> Option<i64> {
        match self {
            Op::Insert(k) | Op::Delete(k) | Op::Increment(k) => Some(*k),
            Op::Read => None,
        }
    }
}

/// Every key mentioned by the scripts, sorted and deduplicated — the
/// seeding domain.
pub fn keys_of(scripts: &[Script]) -> Vec<i64> {
    let mut keys: Vec<i64> = scripts.iter().flatten().filter_map(|op| op.key()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// A transaction's program. Its schedule footprint is `len() + 1` steps:
/// each op, then the commit.
pub type Script = Vec<Op>;

/// Steps contributed by each script (ops + commit).
pub fn steps_of(scripts: &[Script]) -> Vec<usize> {
    scripts.iter().map(|s| s.len() + 1).collect()
}

/// Number of distinct interleavings of `steps` — the multinomial
/// coefficient `(Σsteps)! / Π(stepsᵢ!)`.
pub fn schedule_count(steps: &[usize]) -> u64 {
    let mut n = 0u64;
    let mut count = 1u64;
    for &s in steps {
        for i in 1..=s as u64 {
            n += 1;
            // count * n / i stays integral: it is C(n, i) * previous.
            count = count * n / i;
        }
    }
    count
}

/// Every interleaving of the given per-transaction step counts, in
/// lexicographic order. `enumerate_schedules(&[3, 3])` has 20 entries.
pub fn enumerate_schedules(steps: &[usize]) -> Vec<Vec<usize>> {
    fn recurse(remaining: &mut [usize], cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(cur.clone());
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                cur.push(i);
                recurse(remaining, cur, out);
                cur.pop();
                remaining[i] += 1;
            }
        }
    }
    let mut remaining = steps.to_vec();
    let mut out = Vec::new();
    recurse(&mut remaining, &mut Vec::new(), &mut out);
    out
}

/// A seed-replayable random interleaving of the given step counts: the
/// step multiset shuffled by a fixed-constant LCG. Same seed, same
/// schedule, on every platform — failures reported with their seed replay
/// exactly.
pub fn random_schedule(steps: &[usize], seed: u64) -> Vec<usize> {
    let mut sched: Vec<usize> = steps
        .iter()
        .enumerate()
        .flat_map(|(i, &s)| std::iter::repeat_n(i, s))
        .collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % bound as u64) as usize
    };
    // Fisher–Yates.
    for i in (1..sched.len()).rev() {
        sched.swap(i, next(i + 1));
    }
    sched
}

/// What one scheduled run left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per transaction: did its commit succeed? (A `false` means a
    /// first-committer-wins abort — never a panic.)
    pub committed: Vec<bool>,
    /// Per transaction: the rows each of its `Read` ops observed, in
    /// program order.
    pub reads: Vec<Vec<Vec<Record>>>,
    /// The table contents a fresh transaction sees after the schedule.
    pub final_rows: Vec<Record>,
}

fn apply(txn: &mut Txn, op: &Op, reads: &mut Vec<Vec<Record>>) {
    match op {
        Op::Insert(k) => replace_key(txn, *k, k * 10),
        Op::Delete(k) => replace_key(txn, *k, TOMBSTONE),
        Op::Increment(k) => {
            let v = visible_with_key(txn, *k)
                .iter()
                .map(value_of)
                .filter(|&v| v != TOMBSTONE)
                .max()
                .unwrap_or(0);
            replace_key(txn, *k, v + 1);
        }
        Op::Read => reads.push(strip_tombstones(txn.scan(TABLE).expect("scan"))),
    }
}

/// Replace key `k`'s current row(s) with `⟨k, v⟩` — delete-then-insert,
/// so the write set always includes the row being superseded.
fn replace_key(txn: &mut Txn, k: i64, v: i64) {
    for r in visible_with_key(txn, k) {
        txn.delete(TABLE, r).expect("delete superseded row");
    }
    txn.insert(TABLE, row(k, v)).expect("insert replacement");
}

fn visible_with_key(txn: &mut Txn, k: i64) -> Vec<Record> {
    txn.scan(TABLE)
        .expect("scan")
        .into_iter()
        .filter(|r| r.values().first() == Some(&Value::Int(k)))
        .collect()
}

fn value_of(r: &Record) -> i64 {
    match r.values().get(1) {
        Some(Value::Int(v)) => *v,
        other => panic!("workload rows carry Int values, got {other:?}"),
    }
}

fn strip_tombstones(rows: Vec<Record>) -> Vec<Record> {
    rows.into_iter()
        .filter(|r| value_of(r) != TOMBSTONE)
        .collect()
}

/// A fresh seeded database for `scripts`: the workload table with one
/// tombstone row per mentioned key (committed, so every transaction's
/// snapshot materializes every key).
fn seeded_manager(scripts: &[Script], broken: bool) -> TxnManager {
    let storage = Storage::new();
    let mut mgr = TxnManager::new(&storage, Wal::new());
    if broken {
        mgr = mgr.with_broken_conflict_detection();
    }
    mgr.create_table(TABLE, kv_schema()).expect("create table");
    let seeds: Vec<Record> = keys_of(scripts)
        .into_iter()
        .map(|k| row(k, TOMBSTONE))
        .collect();
    if !seeds.is_empty() {
        mgr.autocommit_insert(TABLE, &seeds).expect("seed keys");
    }
    mgr
}

/// Execute `schedule` over `scripts` against a fresh in-memory database.
/// Each transaction begins lazily at its first scheduled step; its last
/// step is its commit. `broken` runs the manager with conflict detection
/// disabled — the mode the harness must be able to convict.
pub fn run_schedule(scripts: &[Script], schedule: &[usize], broken: bool) -> Outcome {
    let mgr = seeded_manager(scripts, broken);
    let mut txns: Vec<Option<Txn>> = scripts.iter().map(|_| None).collect();
    let mut pc = vec![0usize; scripts.len()];
    let mut committed = vec![false; scripts.len()];
    let mut reads: Vec<Vec<Vec<Record>>> = vec![Vec::new(); scripts.len()];
    for &ti in schedule {
        let step = pc[ti];
        pc[ti] += 1;
        if step == 0 {
            txns[ti] = Some(mgr.begin());
        }
        if step < scripts[ti].len() {
            apply(
                txns[ti].as_mut().expect("began at step 0"),
                &scripts[ti][step],
                &mut reads[ti],
            );
        } else {
            assert_eq!(step, scripts[ti].len(), "schedule over-runs script {ti}");
            let txn = txns[ti].take().expect("began at step 0");
            committed[ti] = txn.commit().is_ok();
        }
    }
    for (ti, &p) in pc.iter().enumerate() {
        assert_eq!(p, scripts[ti].len() + 1, "schedule under-runs script {ti}");
    }
    let final_rows = strip_tombstones(mgr.begin().scan(TABLE).expect("final scan"));
    Outcome {
        committed,
        reads,
        final_rows,
    }
}

/// The sequential oracle: run the given scripts one-at-a-time, each as
/// its own committed transaction, in `order`, and return the final rows.
/// Serial execution never conflicts (every snapshot is current). The
/// database is seeded from ALL of `scripts` (not just `order`) so the
/// oracle and a scheduled run start from the identical state.
pub fn serial_rows(scripts: &[Script], order: &[usize]) -> Vec<Record> {
    let mgr = seeded_manager(scripts, false);
    for &ti in order {
        let mut txn = mgr.begin();
        let mut sink = Vec::new();
        for op in &scripts[ti] {
            apply(&mut txn, op, &mut sink);
        }
        txn.commit().expect("serial execution never conflicts");
    }
    strip_tombstones(mgr.begin().scan(TABLE).expect("serial final scan"))
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// Search for a serial witness: a permutation of the *committed*
/// transactions whose serial execution produces `outcome.final_rows`.
/// `None` convicts the schedule of non-serializability.
pub fn find_serial_equivalent(scripts: &[Script], outcome: &Outcome) -> Option<Vec<usize>> {
    let committed: Vec<usize> = outcome
        .committed
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| c.then_some(i))
        .collect();
    permutations(&committed)
        .into_iter()
        .find(|perm| serial_rows(scripts, perm) == outcome.final_rows)
}

/// Run one schedule and assert it has a serial witness; returns the
/// outcome (with the witness order) for further inspection. Panics with a
/// replayable description on violation.
pub fn check_schedule(
    scripts: &[Script],
    schedule: &[usize],
    broken: bool,
) -> (Outcome, Vec<usize>) {
    let outcome = run_schedule(scripts, schedule, broken);
    match find_serial_equivalent(scripts, &outcome) {
        Some(witness) => (outcome, witness),
        None => panic!(
            "schedule {schedule:?} over {scripts:?} is not serializable: \
             committed={:?}, final_rows={:?}",
            outcome.committed, outcome.final_rows
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_count_matches_enumeration() {
        for steps in [vec![3, 3], vec![2, 2, 2], vec![1, 4], vec![4, 4, 4]] {
            let n = schedule_count(&steps);
            if n <= 40_000 {
                assert_eq!(enumerate_schedules(&steps).len() as u64, n, "{steps:?}");
            }
        }
        // The 2-txn × 2-op tentpole case: C(6,3) = 20.
        assert_eq!(schedule_count(&[3, 3]), 20);
        // The 3-txn × 3-op randomized case: 12!/(4!)³ = 34 650.
        assert_eq!(schedule_count(&[4, 4, 4]), 34_650);
    }

    #[test]
    fn random_schedules_are_seed_stable_and_well_formed() {
        let steps = [4, 4, 4];
        let a = random_schedule(&steps, 42);
        let b = random_schedule(&steps, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, random_schedule(&steps, 43), "different seed differs");
        for (i, &s) in steps.iter().enumerate() {
            assert_eq!(a.iter().filter(|&&t| t == i).count(), s);
        }
    }

    #[test]
    fn serial_oracle_runs_increments_sequentially() {
        let scripts: Vec<Script> = vec![vec![Op::Increment(1)], vec![Op::Increment(1)]];
        assert_eq!(serial_rows(&scripts, &[0, 1]), vec![row(1, 2)]);
        assert_eq!(serial_rows(&scripts, &[1, 0]), vec![row(1, 2)]);
        assert_eq!(serial_rows(&scripts, &[0]), vec![row(1, 1)]);
    }

    #[test]
    fn fully_serial_schedule_reproduces_oracle() {
        let scripts: Vec<Script> = vec![
            vec![Op::Insert(1), Op::Increment(1)],
            vec![Op::Increment(1), Op::Read],
        ];
        // Txn 0's three steps, then txn 1's three steps.
        let (outcome, witness) = check_schedule(&scripts, &[0, 0, 0, 1, 1, 1], false);
        assert_eq!(outcome.committed, vec![true, true]);
        assert_eq!(witness, vec![0, 1]);
        assert_eq!(outcome.final_rows, vec![row(1, 12)]);
        assert_eq!(outcome.reads[1], vec![vec![row(1, 12)]]);
    }

    #[test]
    fn conflicting_interleaving_aborts_one_and_stays_serializable() {
        let scripts: Vec<Script> = vec![vec![Op::Increment(1)], vec![Op::Increment(1)]];
        // Both increment from the same empty snapshot; first committer wins.
        let (outcome, witness) = check_schedule(&scripts, &[0, 1, 0, 1], false);
        assert_eq!(outcome.committed, vec![true, false]);
        assert_eq!(witness, vec![0]);
        assert_eq!(outcome.final_rows, vec![row(1, 1)]);
    }

    #[test]
    fn broken_conflict_detection_is_convicted() {
        let scripts: Vec<Script> = vec![vec![Op::Increment(1)], vec![Op::Increment(1)]];
        let outcome = run_schedule(&scripts, &[0, 1, 0, 1], true);
        assert_eq!(
            outcome.committed,
            vec![true, true],
            "broken mode commits both"
        );
        assert_eq!(outcome.final_rows, vec![row(1, 1)], "the lost update");
        assert!(
            find_serial_equivalent(&scripts, &outcome).is_none(),
            "no serial order of two committed increments yields v=1"
        );
    }
}
